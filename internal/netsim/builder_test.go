package netsim

import (
	"testing"

	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

func TestDumbbellDelivery(t *testing.T) {
	s := sim.NewScheduler()
	d := NewDumbbell(s, 3, DefaultTopologyConfig())
	if len(d.Left) != 3 || len(d.Right) != 3 {
		t.Fatal("shape wrong")
	}
	// Every left host reaches every right host and vice versa.
	flow := packet.FlowID(1)
	for _, l := range d.Left {
		for _, r := range d.Right {
			got := 0
			f := flow
			r.Register(f, FlowHandlerFunc(func(*packet.Packet) { got++ }))
			l.Send(&packet.Packet{Dst: r.ID(), Flow: f, Payload: 10})
			s.Run()
			if got != 1 {
				t.Fatalf("%s -> %s failed", l.Name(), r.Name())
			}
			r.Unregister(f)
			flow++
		}
	}
	// Reverse direction.
	got := 0
	d.Left[0].Register(999, FlowHandlerFunc(func(*packet.Packet) { got++ }))
	d.Right[2].Send(&packet.Packet{Dst: d.Left[0].ID(), Flow: 999, Flags: packet.FlagACK})
	s.Run()
	if got != 1 {
		t.Fatal("reverse delivery failed")
	}
}

func TestDumbbellSameSideDelivery(t *testing.T) {
	s := sim.NewScheduler()
	d := NewDumbbell(s, 2, DefaultTopologyConfig())
	got := 0
	d.Left[1].Register(5, FlowHandlerFunc(func(p *packet.Packet) {
		got++
		if p.Hops() != 2 {
			t.Errorf("same-side hops = %d, want 2", p.Hops())
		}
	}))
	d.Left[0].Send(&packet.Packet{Dst: d.Left[1].ID(), Flow: 5, Payload: 1})
	s.Run()
	if got != 1 {
		t.Fatal("same-side delivery failed")
	}
}

func TestDumbbellBottleneckIsTrunk(t *testing.T) {
	s := sim.NewScheduler()
	d := NewDumbbell(s, 4, DefaultTopologyConfig())
	// Blast from all left hosts to one right host: the trunk port queues.
	for i, l := range d.Left {
		for j := 0; j < 20; j++ {
			l.Send(&packet.Packet{Dst: d.Right[0].ID(), Flow: packet.FlowID(i + 1),
				Payload: packet.MSS, ECN: packet.ECT})
		}
	}
	var maxTrunk int
	d.TrunkLR.OnQueueChange = func(_ sim.Time, q int) {
		if q > maxTrunk {
			maxTrunk = q
		}
	}
	s.Run()
	if d.TrunkLR.Stats().EnqueuedPkts == 0 {
		t.Error("trunk carried nothing")
	}
}

func TestBuilderValidation(t *testing.T) {
	s := sim.NewScheduler()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-rate builder did not panic")
			}
		}()
		NewBuilder(s, TopologyConfig{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("dumbbell n=0 did not panic")
			}
		}()
		NewDumbbell(s, 0, DefaultTopologyConfig())
	}()
	b := NewBuilder(s, DefaultTopologyConfig())
	h := b.Host("h")
	sw := b.Switch("sw")
	b.Attach(h, sw)
	defer func() {
		if recover() == nil {
			t.Error("double attach did not panic")
		}
	}()
	b.Attach(h, sw)
}

func TestBuilderCustomTopology(t *testing.T) {
	// Three-switch chain: h0 - sw0 - sw1 - sw2 - h1.
	s := sim.NewScheduler()
	b := NewBuilder(s, DefaultTopologyConfig())
	h0, h1 := b.Host("h0"), b.Host("h1")
	sw0, sw1, sw2 := b.Switch("sw0"), b.Switch("sw1"), b.Switch("sw2")
	b.Attach(h0, sw0)
	b.Attach(h1, sw2)
	p01, p10 := b.Trunk(sw0, sw1)
	p12, p21 := b.Trunk(sw1, sw2)
	b.Route(sw0, h1, p01)
	b.Route(sw1, h1, p12)
	b.Route(sw1, h0, p10)
	b.Route(sw2, h0, p21)

	if len(b.Hosts()) != 2 || len(b.Switches()) != 3 {
		t.Fatal("builder inventory wrong")
	}

	var hops int64
	h1.Register(7, FlowHandlerFunc(func(p *packet.Packet) { hops = p.Hops() }))
	h0.Send(&packet.Packet{Dst: h1.ID(), Flow: 7, Payload: 100})
	s.Run()
	if hops != 4 {
		t.Errorf("chain hops = %d, want 4", hops)
	}
	// Reverse.
	var back int64
	h0.Register(8, FlowHandlerFunc(func(p *packet.Packet) { back = p.Hops() }))
	h1.Send(&packet.Packet{Dst: h0.ID(), Flow: 8, Payload: 100})
	s.Run()
	if back != 4 {
		t.Errorf("reverse hops = %d, want 4", back)
	}
}
