package netsim

import (
	"testing"
	"testing/quick"

	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// sinkNode collects delivered packets with their arrival times.
type sinkNode struct {
	id   packet.NodeID
	s    *sim.Scheduler
	got  []*packet.Packet
	when []sim.Time
}

func (n *sinkNode) ID() packet.NodeID { return n.id }
func (n *sinkNode) Deliver(p *packet.Packet) {
	n.got = append(n.got, p)
	n.when = append(n.when, n.s.Now())
}

func newSinkAndPort(t *testing.T, cfg PortConfig, rateBps int64, delay sim.Duration) (*sim.Scheduler, *sinkNode, *Port) {
	t.Helper()
	s := sim.NewScheduler()
	sink := &sinkNode{id: 99, s: s}
	link := NewLink(s, sink, rateBps, delay)
	return s, sink, NewPort(s, link, cfg)
}

func dataPkt(n int, ecn packet.ECN) *packet.Packet {
	return &packet.Packet{Dst: 99, Payload: n, ECN: ecn}
}

func TestLinkSerializationDelay(t *testing.T) {
	s := sim.NewScheduler()
	sink := &sinkNode{id: 99, s: s}
	l := NewLink(s, sink, 1_000_000_000, 0)
	// 1500 bytes at 1Gbps = 12us.
	if got := l.SerializationDelay(1500); got != 12*sim.Microsecond {
		t.Errorf("serialization = %v, want 12us", got)
	}
	l2 := NewLink(s, sink, 100_000_000, 0)
	if got := l2.SerializationDelay(1500); got != 120*sim.Microsecond {
		t.Errorf("serialization@100Mbps = %v, want 120us", got)
	}
}

func TestLinkValidation(t *testing.T) {
	s := sim.NewScheduler()
	sink := &sinkNode{id: 1, s: s}
	for _, fn := range []func(){
		func() { NewLink(s, sink, 0, 0) },
		func() { NewLink(s, sink, 1e9, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid link config did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPortDeliversWithLatency(t *testing.T) {
	s, sink, p := newSinkAndPort(t, DefaultPortConfig(), 1_000_000_000, 10*sim.Microsecond)
	p.Enqueue(dataPkt(1460, packet.ECT)) // 1500B on wire: 12us serialize + 10us prop
	s.Run()
	if len(sink.got) != 1 {
		t.Fatalf("delivered %d packets", len(sink.got))
	}
	if want := sim.Time(22 * sim.Microsecond); sink.when[0] != want {
		t.Errorf("arrival = %v, want %v", sink.when[0], want)
	}
}

func TestPortSerializesBackToBack(t *testing.T) {
	s, sink, p := newSinkAndPort(t, DefaultPortConfig(), 1_000_000_000, 0)
	for i := 0; i < 3; i++ {
		p.Enqueue(dataPkt(1460, packet.ECT))
	}
	s.Run()
	if len(sink.got) != 3 {
		t.Fatalf("delivered %d", len(sink.got))
	}
	// Each full segment takes 12us to clock out; arrivals at 12, 24, 36us.
	for i, want := range []sim.Time{12000, 24000, 36000} {
		if sink.when[i] != want {
			t.Errorf("arrival[%d] = %v, want %v", i, sink.when[i], want)
		}
	}
}

func TestPortTailDrop(t *testing.T) {
	cfg := PortConfig{BufferBytes: 3000} // holds two 1500B packets
	s, sink, p := newSinkAndPort(t, cfg, 1_000_000_000, 0)
	var dropped []*packet.Packet
	p.OnDrop = func(pk *packet.Packet) { dropped = append(dropped, pk) }
	// First packet starts transmitting immediately (leaves the queue), so
	// enqueue 4 at t=0: #1 in service, #2,#3 queued (3000B), #4 dropped.
	for i := 0; i < 4; i++ {
		p.Enqueue(dataPkt(1460, packet.ECT))
	}
	st := p.Stats()
	if st.DroppedPkts != 1 || len(dropped) != 1 {
		t.Fatalf("drops = %d (hook %d), want 1", st.DroppedPkts, len(dropped))
	}
	s.Run()
	if len(sink.got) != 3 {
		t.Errorf("delivered %d, want 3", len(sink.got))
	}
	if st.MaxQueueBytes != 3000 {
		t.Errorf("MaxQueueBytes = %d, want 3000", st.MaxQueueBytes)
	}
}

func TestPortECNMarking(t *testing.T) {
	// K = 2000 bytes: marking starts once the instantaneous queue exceeds K.
	cfg := PortConfig{BufferBytes: 1 << 20, MarkThresholdBytes: 2000}
	s, sink, p := newSinkAndPort(t, cfg, 1_000_000_000, 0)
	// Packet 1 enters service (queue stays 0). Packets 2,3 queue up to
	// 3000B. Packet 4 sees queue 3000 > K -> marked.
	for i := 0; i < 4; i++ {
		p.Enqueue(dataPkt(1460, packet.ECT))
	}
	s.Run()
	marked := 0
	for _, pk := range sink.got {
		if pk.ECN == packet.CE {
			marked++
		}
	}
	if marked != 1 {
		t.Errorf("marked = %d, want 1", marked)
	}
	if p.Stats().MarkedPkts != 1 {
		t.Errorf("stats.MarkedPkts = %d, want 1", p.Stats().MarkedPkts)
	}
}

func TestPortNoMarkingForNotECT(t *testing.T) {
	cfg := PortConfig{BufferBytes: 1 << 20, MarkThresholdBytes: 1000}
	s, sink, p := newSinkAndPort(t, cfg, 1_000_000_000, 0)
	for i := 0; i < 5; i++ {
		p.Enqueue(dataPkt(1460, packet.NotECT))
	}
	s.Run()
	for _, pk := range sink.got {
		if pk.ECN == packet.CE {
			t.Fatal("NotECT packet was marked CE")
		}
	}
}

func TestPortMarkingDisabledWhenKZero(t *testing.T) {
	cfg := PortConfig{BufferBytes: 1 << 20} // K = 0: plain drop-tail
	s, sink, p := newSinkAndPort(t, cfg, 1_000_000_000, 0)
	for i := 0; i < 10; i++ {
		p.Enqueue(dataPkt(1460, packet.ECT))
	}
	s.Run()
	for _, pk := range sink.got {
		if pk.ECN == packet.CE {
			t.Fatal("marking occurred with K=0")
		}
	}
}

func TestPortQueueChangeHook(t *testing.T) {
	s, _, p := newSinkAndPort(t, DefaultPortConfig(), 1_000_000_000, 0)
	var samples []int
	p.OnQueueChange = func(_ sim.Time, q int) { samples = append(samples, q) }
	for i := 0; i < 3; i++ {
		p.Enqueue(dataPkt(1460, packet.ECT))
	}
	s.Run()
	// Enqueues: 0 (immediately dequeued to service -> also 0 after), then
	// two enqueues raising to 1500, 3000, then dequeues back down.
	if len(samples) < 6 {
		t.Fatalf("too few queue samples: %v", samples)
	}
	if p.QueueBytes() != 0 || p.QueueLen() != 0 {
		t.Errorf("queue not drained: %d bytes %d pkts", p.QueueBytes(), p.QueueLen())
	}
}

// Property: conservation — every enqueued packet is either dequeued or
// dropped, and the queue drains to zero when the scheduler idles.
func TestPortConservationProperty(t *testing.T) {
	f := func(sizes []uint16, bufKB uint8) bool {
		buf := (int(bufKB%127) + 2) * 1024
		s := sim.NewScheduler()
		sink := &sinkNode{id: 99, s: s}
		link := NewLink(s, sink, 1_000_000_000, sim.Microsecond)
		p := NewPort(s, link, PortConfig{BufferBytes: buf, MarkThresholdBytes: buf / 4})
		n := 0
		for _, sz := range sizes {
			payload := int(sz % packet.MSS)
			p.Enqueue(dataPkt(payload, packet.ECT))
			n++
		}
		s.Run()
		st := p.Stats()
		return st.EnqueuedPkts+st.DroppedPkts == int64(n) &&
			st.DequeuedPkts == st.EnqueuedPkts &&
			int(st.DequeuedPkts) == len(sink.got) &&
			p.QueueBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPortRejectsNonPositiveBuffer(t *testing.T) {
	s := sim.NewScheduler()
	sink := &sinkNode{id: 1, s: s}
	link := NewLink(s, sink, 1e9, 0)
	defer func() {
		if recover() == nil {
			t.Error("zero buffer did not panic")
		}
	}()
	NewPort(s, link, PortConfig{})
}

func TestDefaultPortConfigMatchesPaper(t *testing.T) {
	cfg := DefaultPortConfig()
	if cfg.BufferBytes != 128<<10 {
		t.Errorf("buffer = %d, want 128KB", cfg.BufferBytes)
	}
	if cfg.MarkThresholdBytes != 32<<10 {
		t.Errorf("K = %d, want 32KB", cfg.MarkThresholdBytes)
	}
}
