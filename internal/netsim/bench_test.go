package netsim

import (
	"testing"

	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// benchPath wires the minimal per-packet pipeline — pool → port → link →
// host — with pooling enabled everywhere, mirroring what EnablePacketPool
// sets up on the real topologies.
func benchPath(tb testing.TB) (*sim.Scheduler, *packet.Pool, *Port, *Host) {
	tb.Helper()
	s := sim.NewScheduler()
	pool := &packet.Pool{}
	dst := NewHost(s, 2, "sink")
	dst.SetPool(pool)
	link := NewLink(s, dst, 1e9, 10*sim.Microsecond)
	link.SetPool(pool)
	port := NewPort(s, link, DefaultPortConfig())
	port.SetPool(pool)
	return s, pool, port, dst
}

// fill stamps a pooled packet as a full-MSS data segment bound for dst.
func fill(pkt *packet.Packet, dst *Host, seq int64) {
	pkt.Dst = dst.ID()
	pkt.Flow = 1
	pkt.Seq = seq
	pkt.Payload = packet.MSS
	pkt.ECN = packet.ECT
}

// TestEnqueueDeliverAllocBudget pins the per-packet alloc budget of the
// network layer at zero: once the ring, the event freelist and the packet
// pool are warm, pushing a packet through enqueue → serialize → propagate →
// deliver → recycle allocates nothing.
func TestEnqueueDeliverAllocBudget(t *testing.T) {
	s, pool, port, dst := benchPath(t)

	seq := int64(0)
	send := func() {
		pkt := pool.Get()
		fill(pkt, dst, seq)
		seq += packet.MSS
		port.Enqueue(pkt)
		s.Run()
	}
	// Warm the freelists: first packets mint pool entries, grow the ring,
	// and mint scheduler events.
	for i := 0; i < 64; i++ {
		send()
	}
	if got := testing.AllocsPerRun(200, send); got != 0 {
		t.Fatalf("enqueue/deliver path allocates %.1f times per packet, want 0", got)
	}
	if pool.Minted() > 64 {
		t.Fatalf("pool minted %d packets for a one-in-flight workload", pool.Minted())
	}
}

// TestBurstAllocBudget pushes a queue-building burst (marking threshold
// crossed, ECN set, several packets serialized back to back) and demands
// the same zero budget — CE marking and queue bookkeeping are on the hot
// path too.
func TestBurstAllocBudget(t *testing.T) {
	s, pool, port, dst := benchPath(t)

	seq := int64(0)
	burst := func() {
		for i := 0; i < 32; i++ {
			pkt := pool.Get()
			fill(pkt, dst, seq)
			seq += packet.MSS
			port.Enqueue(pkt)
		}
		s.Run()
	}
	for i := 0; i < 4; i++ {
		burst()
	}
	if got := testing.AllocsPerRun(50, burst); got != 0 {
		t.Fatalf("burst path allocates %.1f times per 32-packet burst, want 0", got)
	}
}

// BenchmarkPortEnqueueDeliver measures the steady-state per-packet cost of
// the network pipeline with pooling on. The alloc column is the headline:
// it must read 0 allocs/op.
func BenchmarkPortEnqueueDeliver(b *testing.B) {
	s, pool, port, dst := benchPath(b)
	for i := 0; i < 64; i++ {
		pkt := pool.Get()
		fill(pkt, dst, int64(i)*packet.MSS)
		port.Enqueue(pkt)
		s.Run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := pool.Get()
		fill(pkt, dst, int64(i)*packet.MSS)
		port.Enqueue(pkt)
		s.Run()
	}
	b.SetBytes(int64(packet.MSS + packet.HeaderBytes))
}

// BenchmarkPortBurst32 measures a 32-packet back-to-back burst through one
// port: queue growth, ECN marking above K, serialization chaining.
func BenchmarkPortBurst32(b *testing.B) {
	s, pool, port, dst := benchPath(b)
	seq := int64(0)
	burst := func() {
		for i := 0; i < 32; i++ {
			pkt := pool.Get()
			fill(pkt, dst, seq)
			seq += packet.MSS
			port.Enqueue(pkt)
		}
		s.Run()
	}
	for i := 0; i < 4; i++ {
		burst()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		burst()
	}
	b.SetBytes(32 * int64(packet.MSS+packet.HeaderBytes))
}
