package netsim

import (
	"math"
	"testing"

	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// slowSinkPort builds a port draining at a slow rate so a queue persists.
func slowSinkPort(cfg PortConfig) (*sim.Scheduler, *sinkNode, *Port) {
	s := sim.NewScheduler()
	sink := &sinkNode{id: 99, s: s}
	link := NewLink(s, sink, 100_000_000, 0) // 100 Mbps: 120us per full packet
	return s, sink, NewPort(s, link, cfg)
}

func TestREDMarkingBelowMinNeverMarks(t *testing.T) {
	cfg := PortConfig{
		BufferBytes: 1 << 20, Policy: MarkREDLinear,
		REDMinBytes: 64 << 10, REDMaxBytes: 96 << 10, REDMaxProb: 1, Seed: 1,
	}
	s, sink, p := slowSinkPort(cfg)
	// Enqueue 10 packets: queue stays well below 64KB.
	for i := 0; i < 10; i++ {
		p.Enqueue(dataPkt(1460, packet.ECT))
	}
	s.Run()
	for _, pk := range sink.got {
		if pk.ECN == packet.CE {
			t.Fatal("marked below REDMin")
		}
	}
}

func TestREDMarkingAboveMaxAlwaysMarks(t *testing.T) {
	cfg := PortConfig{
		BufferBytes: 1 << 20, Policy: MarkREDLinear,
		REDMinBytes: 1500, REDMaxBytes: 3000, REDMaxProb: 0.5, Seed: 1,
	}
	s, sink, p := slowSinkPort(cfg)
	for i := 0; i < 20; i++ {
		p.Enqueue(dataPkt(1460, packet.ECT))
	}
	s.Run()
	// Packets arriving when queue >= 3000 bytes (i.e. from the 4th on,
	// roughly) must all be marked.
	marked := 0
	for _, pk := range sink.got {
		if pk.ECN == packet.CE {
			marked++
		}
	}
	if marked < 15 {
		t.Errorf("marked = %d/20, expected nearly all above REDMax", marked)
	}
}

func TestREDMarkingLinearRegion(t *testing.T) {
	// Hold the queue in the linear region and check the empirical marking
	// probability approximates the configured slope.
	cfg := PortConfig{
		BufferBytes: 1 << 20, Policy: MarkREDLinear,
		REDMinBytes: 0, REDMaxBytes: 1 << 20, REDMaxProb: 1, Seed: 7,
	}
	s := sim.NewScheduler()
	sink := &sinkNode{id: 99, s: s}
	link := NewLink(s, sink, 1_000_000_000, 0)
	p := NewPort(s, link, cfg)
	// Directly exercise shouldMark at the midpoint: prob = 0.5.
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if p.shouldMark(512 << 10) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.5) > 0.02 {
		t.Errorf("empirical mark prob = %v, want ~0.5", got)
	}
}

func TestREDValidation(t *testing.T) {
	s := sim.NewScheduler()
	sink := &sinkNode{id: 1, s: s}
	link := NewLink(s, sink, 1e9, 0)
	bad := []PortConfig{
		{BufferBytes: 1, Policy: MarkREDLinear, REDMinBytes: -1},
		{BufferBytes: 1, Policy: MarkREDLinear, REDMinBytes: 10, REDMaxBytes: 5},
		{BufferBytes: 1, Policy: MarkREDLinear, REDMaxProb: 1.5},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad RED config %d did not panic", i)
				}
			}()
			NewPort(s, link, cfg)
		}()
	}
}

func TestLinkLossInjection(t *testing.T) {
	s := sim.NewScheduler()
	sink := &sinkNode{id: 99, s: s}
	link := NewLink(s, sink, 1_000_000_000, 0)
	link.SetLoss(0.5, 3)
	const n = 10000
	for i := 0; i < n; i++ {
		link.Propagate(&packet.Packet{Dst: 99})
	}
	s.Run()
	delivered := len(sink.got)
	if got := float64(delivered) / n; math.Abs(got-0.5) > 0.03 {
		t.Errorf("delivery rate = %v, want ~0.5", got)
	}
	if link.Lost() != int64(n-delivered) {
		t.Errorf("Lost() = %d, want %d", link.Lost(), n-delivered)
	}
}

func TestLinkLossValidation(t *testing.T) {
	s := sim.NewScheduler()
	sink := &sinkNode{id: 1, s: s}
	link := NewLink(s, sink, 1e9, 0)
	defer func() {
		if recover() == nil {
			t.Error("invalid loss rate did not panic")
		}
	}()
	link.SetLoss(1.5, 0)
}

func TestLinkLossZeroIsTransparent(t *testing.T) {
	s := sim.NewScheduler()
	sink := &sinkNode{id: 99, s: s}
	link := NewLink(s, sink, 1e9, 0)
	for i := 0; i < 100; i++ {
		link.Propagate(&packet.Packet{Dst: 99})
	}
	s.Run()
	if len(sink.got) != 100 || link.Lost() != 0 {
		t.Error("zero loss rate dropped packets")
	}
}

// TestTransportSurvivesLossyLink: end-to-end fault injection — a transfer
// across a 2% lossy link still completes and delivers exactly the bytes.
func TestTransportSurvivesLossyLink(t *testing.T) {
	s := sim.NewScheduler()
	star := NewStar(s, 2, DefaultTopologyConfig())
	// Inject loss on the switch->host1 downlink.
	port := star.Switch.RouteTo(star.Hosts[1].ID())
	port.Link().SetLoss(0.02, 11)
	_ = port
	// Use the tcp package indirectly? This test lives in netsim; keep it
	// at packet level: send 500 packets, count arrivals + Lost() conserve.
	var got int
	star.Hosts[1].Register(5, FlowHandlerFunc(func(*packet.Packet) { got++ }))
	for i := 0; i < 500; i++ {
		star.Hosts[0].Send(&packet.Packet{Dst: star.Hosts[1].ID(), Flow: 5, Payload: 100})
	}
	s.Run()
	if int64(got)+port.Link().Lost() != 500 {
		t.Errorf("conservation: got %d + lost %d != 500", got, port.Link().Lost())
	}
	if port.Link().Lost() == 0 {
		t.Error("no loss observed at 2% over 500 packets (improbable)")
	}
}
