package netsim

import (
	"testing"

	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

func TestStarDelivery(t *testing.T) {
	s := sim.NewScheduler()
	star := NewStar(s, 3, DefaultTopologyConfig())
	if len(star.Hosts) != 3 {
		t.Fatalf("hosts = %d", len(star.Hosts))
	}
	var got []*packet.Packet
	star.Hosts[2].Register(7, FlowHandlerFunc(func(p *packet.Packet) { got = append(got, p) }))

	pkt := &packet.Packet{Dst: star.Hosts[2].ID(), Flow: 7, Payload: 100, ECN: packet.ECT}
	star.Hosts[0].Send(pkt)
	s.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d", len(got))
	}
	if got[0].Src != star.Hosts[0].ID() {
		t.Errorf("src = %d, want %d", got[0].Src, star.Hosts[0].ID())
	}
	if got[0].Hops() != 2 {
		t.Errorf("hops = %d, want 2 (host link + switch link)", got[0].Hops())
	}
}

func TestTwoTierShape(t *testing.T) {
	s := sim.NewScheduler()
	tt := NewTwoTier(s, 3, 3, DefaultTopologyConfig())
	if len(tt.Workers) != 9 || len(tt.Leaves) != 3 {
		t.Fatalf("workers=%d leaves=%d", len(tt.Workers), len(tt.Leaves))
	}
	if tt.BottleneckPort == nil {
		t.Fatal("no bottleneck port")
	}
	if tt.BottleneckPort != tt.Root.RouteTo(tt.Aggregator.ID()) {
		t.Error("bottleneck port is not the root->aggregator port")
	}
}

func TestTwoTierWorkerToAggregatorPath(t *testing.T) {
	s := sim.NewScheduler()
	tt := NewTwoTier(s, 3, 3, DefaultTopologyConfig())
	var got *packet.Packet
	var when sim.Time
	tt.Aggregator.Register(1, FlowHandlerFunc(func(p *packet.Packet) { got, when = p, s.Now() }))

	tt.Workers[0].Send(&packet.Packet{Dst: tt.Aggregator.ID(), Flow: 1, Payload: packet.MSS, ECN: packet.ECT})
	s.Run()
	if got == nil {
		t.Fatal("not delivered")
	}
	if got.Hops() != 3 {
		t.Errorf("hops = %d, want 3 (worker->leaf->root->agg)", got.Hops())
	}
	// 3 links x (12us serialization + 10us propagation) = 66us.
	if want := sim.Time(66 * sim.Microsecond); when != want {
		t.Errorf("arrival = %v, want %v", when, want)
	}
}

func TestTwoTierAggregatorToWorkerPath(t *testing.T) {
	s := sim.NewScheduler()
	tt := NewTwoTier(s, 3, 3, DefaultTopologyConfig())
	for i, w := range tt.Workers {
		var got *packet.Packet
		fl := packet.FlowID(100 + i)
		w.Register(fl, FlowHandlerFunc(func(p *packet.Packet) { got = p }))
		tt.Aggregator.Send(&packet.Packet{Dst: w.ID(), Flow: fl, Flags: packet.FlagACK})
		s.Run()
		if got == nil {
			t.Fatalf("worker %d unreachable from aggregator", i)
		}
	}
}

func TestTwoTierWorkerToWorkerCrossLeaf(t *testing.T) {
	s := sim.NewScheduler()
	tt := NewTwoTier(s, 3, 3, DefaultTopologyConfig())
	// worker0 (leaf0) -> worker8 (leaf2) crosses the root.
	var got *packet.Packet
	tt.Workers[8].Register(42, FlowHandlerFunc(func(p *packet.Packet) { got = p }))
	tt.Workers[0].Send(&packet.Packet{Dst: tt.Workers[8].ID(), Flow: 42, Payload: 10, ECN: packet.ECT})
	s.Run()
	if got == nil {
		t.Fatal("cross-leaf delivery failed")
	}
	if got.Hops() != 4 {
		t.Errorf("hops = %d, want 4", got.Hops())
	}
}

func TestTwoTierControlPacketReachesHandler(t *testing.T) {
	s := sim.NewScheduler()
	tt := NewTwoTier(s, 1, 2, DefaultTopologyConfig())
	var req *packet.Packet
	tt.Workers[0].OnControl = func(p *packet.Packet) { req = p }
	tt.Aggregator.Send(&packet.Packet{
		Dst: tt.Workers[0].ID(), Flags: packet.FlagREQ, ReqBytes: 1 << 20,
	})
	s.Run()
	if req == nil {
		t.Fatal("REQ not delivered to control handler")
	}
	if req.ReqBytes != 1<<20 {
		t.Errorf("ReqBytes = %d", req.ReqBytes)
	}
}

func TestHostUnclaimedAndDuplicateRegistration(t *testing.T) {
	s := sim.NewScheduler()
	star := NewStar(s, 2, DefaultTopologyConfig())
	h := star.Hosts[1]
	var unclaimed int
	h.OnUnclaimed = func(*packet.Packet) { unclaimed++ }
	star.Hosts[0].Send(&packet.Packet{Dst: h.ID(), Flow: 5, Payload: 1})
	s.Run()
	if unclaimed != 1 {
		t.Errorf("unclaimed = %d", unclaimed)
	}

	h.Register(5, FlowHandlerFunc(func(*packet.Packet) {}))
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	h.Register(5, FlowHandlerFunc(func(*packet.Packet) {}))
}

func TestHostUnregister(t *testing.T) {
	s := sim.NewScheduler()
	star := NewStar(s, 2, DefaultTopologyConfig())
	h := star.Hosts[1]
	n := 0
	h.Register(9, FlowHandlerFunc(func(*packet.Packet) { n++ }))
	h.Unregister(9)
	var unclaimed int
	h.OnUnclaimed = func(*packet.Packet) { unclaimed++ }
	star.Hosts[0].Send(&packet.Packet{Dst: h.ID(), Flow: 9, Payload: 1})
	s.Run()
	if n != 0 || unclaimed != 1 {
		t.Errorf("n=%d unclaimed=%d after Unregister", n, unclaimed)
	}
}

func TestSwitchNoRoutePanics(t *testing.T) {
	s := sim.NewScheduler()
	sw := NewSwitch(s, 1, "sw")
	defer func() {
		if recover() == nil {
			t.Error("missing route did not panic")
		}
	}()
	sw.Deliver(&packet.Packet{Dst: 12345})
}

func TestHostWithoutUplinkPanics(t *testing.T) {
	s := sim.NewScheduler()
	h := NewHost(s, 1, "h")
	defer func() {
		if recover() == nil {
			t.Error("send without uplink did not panic")
		}
	}()
	h.Send(&packet.Packet{Dst: 2})
}

func TestPipelineCapacityMatchesPaperArithmetic(t *testing.T) {
	// §IV-C: "Pipeline Capacity C x D + B is 1Gbps x 100us + 128KB =
	// 140.5KB" (the paper's text has a typo "100Gbps"; the arithmetic shown
	// is 1Gbps). Our config: C=1Gbps, base RTT with 3 hops + serialization
	// ~= 100us, B=128KB.
	cfg := DefaultTopologyConfig()
	// With D=100us exactly: C*D = 12.5KB, + 128KB = 140.5KB.
	bdp := cfg.LinkRateBps * int64(100*sim.Microsecond) / (8 * int64(sim.Second))
	if bdp != 12500 {
		t.Errorf("C*D = %d, want 12500 bytes", bdp)
	}
	total := bdp + int64(cfg.SwitchPort.BufferBytes)
	if total != 12500+131072 {
		t.Errorf("pipeline capacity = %d", total)
	}
	// And the builder's own helper for the 3-hop path is in the same range.
	got := cfg.PipelineCapacityBytes(3)
	if got < 135000 || got > 150000 {
		t.Errorf("PipelineCapacityBytes(3) = %d, want ~140KB", got)
	}
}

func TestBaseRTT(t *testing.T) {
	cfg := DefaultTopologyConfig()
	if got := cfg.BaseRTT(3); got != 60*sim.Microsecond {
		t.Errorf("BaseRTT(3) = %v, want 60us", got)
	}
}

func TestTwoTierValidation(t *testing.T) {
	s := sim.NewScheduler()
	defer func() {
		if recover() == nil {
			t.Error("invalid two-tier config did not panic")
		}
	}()
	NewTwoTier(s, 0, 3, DefaultTopologyConfig())
}
