package netsim

import (
	"fmt"

	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// TopologyConfig describes link and switch parameters shared by the
// topology builders. The defaults reproduce the paper's testbed (§III):
// 1Gbps links, ~100us base RTT, 128KB static buffer per switch port with
// ECN threshold K=32KB.
type TopologyConfig struct {
	// LinkRateBps is the rate of every link (hosts and inter-switch).
	LinkRateBps int64
	// LinkDelay is the one-way propagation delay of every link.
	LinkDelay sim.Duration
	// SwitchPort configures every switch output port.
	SwitchPort PortConfig
	// HostQueueBytes sizes the host NIC output queue. Host queues do not
	// mark ECN; they are deep enough that a window-limited sender never
	// drops locally.
	//inv: HostQueueBytes >= 1
	HostQueueBytes int
}

// DefaultTopologyConfig returns the testbed parameters from the paper.
func DefaultTopologyConfig() TopologyConfig {
	return TopologyConfig{
		LinkRateBps:    1_000_000_000, // 1 Gbps
		LinkDelay:      10 * sim.Microsecond,
		SwitchPort:     DefaultPortConfig(),
		HostQueueBytes: 4 << 20,
	}
}

// BaseRTT returns the round-trip time of a payload-less exchange across the
// given number of one-way hops (links), ignoring queueing: 2 * hops * delay.
// With the default 2-tier topology a worker-aggregator path crosses three
// links each way, giving 60us of propagation; adding serialization of a
// full-MTU segment and its ACK lands near the paper's ~100us RTT.
func (c TopologyConfig) BaseRTT(hops int) sim.Duration {
	return sim.Duration(2*hops) * c.LinkDelay
}

// idAllocator hands out unique node ids within one topology.
type idAllocator struct{ next packet.NodeID }

func (a *idAllocator) alloc() packet.NodeID {
	id := a.next
	//lint:allow overflow ids are handed out once per node at topology construction; node counts are thousands, nowhere near 2^31
	a.next++
	return id
}

// connect wires a bidirectional host<->switch attachment: the host gets an
// uplink port/link toward the switch, the switch gets a port/link toward
// the host, and the switch learns the direct route.
func connect(sched *sim.Scheduler, h *Host, sw *Switch, cfg TopologyConfig) {
	up := NewLink(sched, sw, cfg.LinkRateBps, cfg.LinkDelay)
	h.SetUplink(NewPort(sched, up, PortConfig{BufferBytes: cfg.HostQueueBytes}))
	down := NewLink(sched, h, cfg.LinkRateBps, cfg.LinkDelay)
	sw.AddRoute(h.ID(), sw.AddPort(down, cfg.SwitchPort))
}

// trunk wires a bidirectional switch<->switch trunk and returns the two
// directed ports (a->b, b->a). Routes are installed by the caller.
func trunk(sched *sim.Scheduler, a, b *Switch, cfg TopologyConfig) (ab, ba *Port) {
	lab := NewLink(sched, b, cfg.LinkRateBps, cfg.LinkDelay)
	ab = a.AddPort(lab, cfg.SwitchPort)
	lba := NewLink(sched, a, cfg.LinkRateBps, cfg.LinkDelay)
	ba = b.AddPort(lba, cfg.SwitchPort)
	return ab, ba
}

// enablePool wires one shared packet freelist through every element of a
// topology that allocates or consumes packets: hosts (mint on send, free on
// delivery), ports (free on tail drop), and links (free on injected loss).
func enablePool(pool *packet.Pool, hosts []*Host, switches []*Switch) {
	for _, h := range hosts {
		h.SetPool(pool)
		if up := h.Uplink(); up != nil {
			up.SetPool(pool)
			up.Link().SetPool(pool)
		}
	}
	for _, sw := range switches {
		for _, p := range sw.Ports() {
			p.SetPool(pool)
			p.Link().SetPool(pool)
		}
	}
}

// Star is a single-switch topology: N hosts on one switch. Used for unit
// tests and micro-benchmarks of the transport.
type Star struct {
	Switch *Switch
	Hosts  []*Host
}

// NewStar builds a star of n hosts around one switch.
func NewStar(sched *sim.Scheduler, n int, cfg TopologyConfig) *Star {
	ids := &idAllocator{}
	sw := NewSwitch(sched, ids.alloc(), "switch0")
	st := &Star{Switch: sw}
	for i := 0; i < n; i++ {
		h := NewHost(sched, ids.alloc(), fmt.Sprintf("host%d", i))
		connect(sched, h, sw, cfg)
		st.Hosts = append(st.Hosts, h)
	}
	return st
}

// EnablePacketPool turns on packet recycling across the whole star and
// returns the shared pool. Call after wiring, before traffic. Handlers
// must then not retain delivered packets beyond their callback.
func (st *Star) EnablePacketPool() *packet.Pool {
	pool := &packet.Pool{}
	enablePool(pool, st.Hosts, []*Switch{st.Switch})
	return pool
}

// TwoTier is the paper's experimental topology (Fig. 5): a root switch
// ("Switch 1") with the aggregator attached directly, and leaf switches
// each carrying a group of worker hosts. The bottleneck for incast traffic
// is the root's port toward the aggregator.
type TwoTier struct {
	Root   *Switch   // Switch 1
	Leaves []*Switch // Switch 2, 3, ...

	Aggregator *Host
	Workers    []*Host

	// BottleneckPort is the root switch's output port toward the
	// aggregator — the port whose queue the paper's Figures 9 and 14
	// sample.
	BottleneckPort *Port
}

// NewTwoTier builds the 2-tier tree with the given fan-out: leaves leaf
// switches, each with hostsPerLeaf workers, plus one aggregator on the
// root. The paper's cluster is 3 leaves x 3 workers + 1 aggregator.
func NewTwoTier(sched *sim.Scheduler, leaves, hostsPerLeaf int, cfg TopologyConfig) *TwoTier {
	if leaves <= 0 || hostsPerLeaf <= 0 {
		panic("netsim: two-tier topology needs at least one leaf and one host per leaf")
	}
	ids := &idAllocator{}
	root := NewSwitch(sched, ids.alloc(), "switch1")
	tt := &TwoTier{Root: root}

	// Aggregator hangs off the root.
	agg := NewHost(sched, ids.alloc(), "aggregator")
	connect(sched, agg, root, cfg)
	tt.Aggregator = agg
	tt.BottleneckPort = root.RouteTo(agg.ID())

	for li := 0; li < leaves; li++ {
		leaf := NewSwitch(sched, ids.alloc(), fmt.Sprintf("switch%d", li+2))
		rootToLeaf, leafToRoot := trunk(sched, root, leaf, cfg)
		// Aggregator (and anything not local) is reached via the root.
		leaf.AddRoute(agg.ID(), leafToRoot)

		for hi := 0; hi < hostsPerLeaf; hi++ {
			w := NewHost(sched, ids.alloc(), fmt.Sprintf("worker%d", li*hostsPerLeaf+hi))
			connect(sched, w, leaf, cfg)
			// Root reaches this worker through the leaf trunk.
			root.AddRoute(w.ID(), rootToLeaf)
			tt.Workers = append(tt.Workers, w)
		}
		tt.Leaves = append(tt.Leaves, leaf)
	}

	// Cross-leaf worker-to-worker routes (worker traffic other than to the
	// aggregator goes up to the root and back down).
	for _, leaf := range tt.Leaves {
		for _, w := range tt.Workers {
			if leaf.RouteTo(w.ID()) == nil {
				// Find this leaf's uplink: the route it uses for the
				// aggregator (which is always via the root).
				leaf.AddRoute(w.ID(), leaf.RouteTo(agg.ID()))
			}
		}
	}
	// Root routes to aggregator already installed by connect; worker routes
	// installed above.
	return tt
}

// EnablePacketPool turns on packet recycling across the whole tree and
// returns the shared pool. Call after wiring, before traffic. Handlers
// must then not retain delivered packets beyond their callback.
func (tt *TwoTier) EnablePacketPool() *packet.Pool {
	hosts := make([]*Host, 0, len(tt.Workers)+1)
	hosts = append(hosts, tt.Aggregator)
	hosts = append(hosts, tt.Workers...)
	switches := make([]*Switch, 0, len(tt.Leaves)+1)
	switches = append(switches, tt.Root)
	switches = append(switches, tt.Leaves...)
	pool := &packet.Pool{}
	enablePool(pool, hosts, switches)
	return pool
}

// PipelineCapacityBytes computes the paper's Pipeline Capacity C x D + B
// (§II-C) for the bottleneck path: the bandwidth-delay product across the
// given number of one-way hops plus the bottleneck port buffer.
func (c TopologyConfig) PipelineCapacityBytes(hops int) int64 {
	bdp := c.LinkRateBps * int64(c.BaseRTT(hops)) / (8 * int64(sim.Second))
	return bdp + int64(c.SwitchPort.BufferBytes)
}
