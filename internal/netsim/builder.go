package netsim

import (
	"fmt"

	"dctcpplus/internal/sim"
)

// Builder assembles custom topologies from hosts, switches and
// bidirectional attachments, with automatic node-id allocation and route
// installation. The stock Star/TwoTier builders cover the paper's
// experiments; Builder is the public construction surface for everything
// else (dumbbells, multi-tier trees, asymmetric fabrics).
//
// Routing: attachments install direct routes; trunks do not route by
// themselves — call Route (or RouteAllVia for a default uplink) after
// wiring. Builder topologies must be loop-free; the per-packet hop guard
// panics on routing loops during simulation.
type Builder struct {
	sched *sim.Scheduler
	cfg   TopologyConfig
	ids   idAllocator

	hosts    []*Host
	switches []*Switch
}

// NewBuilder starts a topology with the given shared link/port parameters.
func NewBuilder(sched *sim.Scheduler, cfg TopologyConfig) *Builder {
	if cfg.LinkRateBps <= 0 || cfg.HostQueueBytes <= 0 {
		panic("netsim: builder needs positive link rate and host queue")
	}
	return &Builder{sched: sched, cfg: cfg}
}

// Host creates a named host (unattached until Attach is called).
func (b *Builder) Host(name string) *Host {
	h := NewHost(b.sched, b.ids.alloc(), name)
	b.hosts = append(b.hosts, h)
	return h
}

// Switch creates a named switch.
func (b *Builder) Switch(name string) *Switch {
	sw := NewSwitch(b.sched, b.ids.alloc(), name)
	b.switches = append(b.switches, sw)
	return sw
}

// Attach wires host <-> sw bidirectionally and installs the switch's direct
// route to the host.
func (b *Builder) Attach(h *Host, sw *Switch) {
	if h.Uplink() != nil {
		panic(fmt.Sprintf("netsim: host %s already attached", h.Name()))
	}
	connect(b.sched, h, sw, b.cfg)
}

// Trunk wires a bidirectional switch <-> switch link and returns the two
// directed ports (a->b, b->a) for route installation.
func (b *Builder) Trunk(a, sw *Switch) (ab, ba *Port) {
	return trunk(b.sched, a, sw, b.cfg)
}

// Route installs "to reach dst, sw forwards out of port".
func (b *Builder) Route(sw *Switch, dst *Host, out *Port) {
	sw.AddRoute(dst.ID(), out)
}

// RouteAllVia installs routes on sw for every built host that sw cannot
// already reach, via the given port — the "default uplink" idiom.
func (b *Builder) RouteAllVia(sw *Switch, out *Port) {
	for _, h := range b.hosts {
		if sw.RouteTo(h.ID()) == nil {
			sw.AddRoute(h.ID(), out)
		}
	}
}

// Hosts returns all hosts in creation order.
func (b *Builder) Hosts() []*Host { return b.hosts }

// Switches returns all switches in creation order.
func (b *Builder) Switches() []*Switch { return b.switches }

// Dumbbell is the classic two-switch topology: left hosts on one switch,
// right hosts on the other, a single trunk as the shared bottleneck.
type Dumbbell struct {
	Left, Right []*Host
	LeftSw      *Switch
	RightSw     *Switch
	// TrunkLR is the bottleneck port carrying left->right traffic.
	TrunkLR *Port
	// TrunkRL carries right->left traffic (ACK path for left->right flows).
	TrunkRL *Port
}

// NewDumbbell builds a dumbbell with n hosts on each side.
func NewDumbbell(sched *sim.Scheduler, n int, cfg TopologyConfig) *Dumbbell {
	if n <= 0 {
		panic("netsim: dumbbell needs at least one host per side")
	}
	b := NewBuilder(sched, cfg)
	ls, rs := b.Switch("left"), b.Switch("right")
	d := &Dumbbell{LeftSw: ls, RightSw: rs}
	d.TrunkLR, d.TrunkRL = b.Trunk(ls, rs)
	for i := 0; i < n; i++ {
		l := b.Host(fmt.Sprintf("left%d", i))
		b.Attach(l, ls)
		d.Left = append(d.Left, l)
		r := b.Host(fmt.Sprintf("right%d", i))
		b.Attach(r, rs)
		d.Right = append(d.Right, r)
	}
	b.RouteAllVia(ls, d.TrunkLR)
	b.RouteAllVia(rs, d.TrunkRL)
	return d
}
