package netsim

import (
	"testing"

	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

func TestHULLPortConfigPreset(t *testing.T) {
	cfg := HULLPortConfig()
	if cfg.Policy != MarkPhantomQueue || cfg.PhantomDrainFactor != 0.95 ||
		cfg.PhantomThresholdBytes != 3<<10 {
		t.Errorf("preset = %+v", cfg)
	}
}

func TestPhantomValidation(t *testing.T) {
	s := sim.NewScheduler()
	sink := &sinkNode{id: 1, s: s}
	link := NewLink(s, sink, 1e9, 0)
	bad := []PortConfig{
		{BufferBytes: 1, Policy: MarkPhantomQueue, PhantomDrainFactor: 0, PhantomThresholdBytes: 1},
		{BufferBytes: 1, Policy: MarkPhantomQueue, PhantomDrainFactor: 1.2, PhantomThresholdBytes: 1},
		{BufferBytes: 1, Policy: MarkPhantomQueue, PhantomDrainFactor: 0.9, PhantomThresholdBytes: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad phantom config %d did not panic", i)
				}
			}()
			NewPort(s, link, cfg)
		}()
	}
}

func TestPhantomGrowsAboveDrainRate(t *testing.T) {
	// Arrivals at exactly line rate exceed the 0.95x drain: the phantom
	// queue must grow and eventually mark, even while the real queue stays
	// near-empty.
	s := sim.NewScheduler()
	sink := &sinkNode{id: 99, s: s}
	link := NewLink(s, sink, 1_000_000_000, 0)
	p := NewPort(s, link, HULLPortConfig())

	// Inject one full-size packet every serialization time (12us): the
	// real queue never exceeds one packet, utilization = 1 > 0.95.
	const n = 400
	for i := 0; i < n; i++ {
		at := sim.Time(i) * sim.Time(12*sim.Microsecond)
		s.At(at, func() { p.Enqueue(dataPkt(1460, packet.ECT)) })
	}
	s.Run()

	st := p.Stats()
	if st.MarkedPkts == 0 {
		t.Fatal("phantom queue never marked at 100% utilization")
	}
	// Real queue stayed tiny: at most ~2 packets deep.
	if st.MaxQueueBytes > 2*1500 {
		t.Errorf("real queue reached %d bytes; phantom marking should not need real queueing", st.MaxQueueBytes)
	}
	if p.PhantomQueueBytes() <= 0 {
		t.Error("phantom occupancy not positive at end of overload")
	}
}

func TestPhantomDrainsBelowDrainRate(t *testing.T) {
	// Arrivals at half line rate are below the drain factor: the phantom
	// queue stays near zero and never marks.
	s := sim.NewScheduler()
	sink := &sinkNode{id: 99, s: s}
	link := NewLink(s, sink, 1_000_000_000, 0)
	p := NewPort(s, link, HULLPortConfig())
	for i := 0; i < 400; i++ {
		at := sim.Time(i) * sim.Time(24*sim.Microsecond) // 50% utilization
		s.At(at, func() { p.Enqueue(dataPkt(1460, packet.ECT)) })
	}
	s.Run()
	if got := p.Stats().MarkedPkts; got != 0 {
		t.Errorf("marked %d packets at 50%% utilization", got)
	}
}

// TestHULLEndToEnd: a DCTCP flow through a phantom-queue bottleneck holds
// the real queue near zero (HULL's claim), sacrificing a slice of
// throughput.
func TestHULLEndToEnd(t *testing.T) {
	s := sim.NewScheduler()
	cfg := DefaultTopologyConfig()
	cfg.SwitchPort = HULLPortConfig()
	star := NewStar(s, 2, cfg)
	port := star.Switch.RouteTo(star.Hosts[1].ID())

	// Drive with raw paced packets at line rate from host 0 (transport
	// dynamics are covered in the dctcp package; here we assert the
	// substrate's marking/queue behaviour end-to-end through a topology).
	marked := 0
	star.Hosts[1].Register(1, FlowHandlerFunc(func(pk *packet.Packet) {
		if pk.ECN == packet.CE {
			marked++
		}
	}))
	for i := 0; i < 500; i++ {
		at := sim.Time(i) * sim.Time(12*sim.Microsecond)
		s.At(at, func() {
			star.Hosts[0].Send(&packet.Packet{Dst: star.Hosts[1].ID(), Flow: 1,
				Payload: packet.MSS, ECN: packet.ECT})
		})
	}
	s.Run()
	if marked == 0 {
		t.Fatal("no CE marks observed through HULL bottleneck")
	}
	if port.Stats().MaxQueueBytes > 3*1500 {
		t.Errorf("real queue high-water %d bytes; HULL should keep it near empty", port.Stats().MaxQueueBytes)
	}
}
