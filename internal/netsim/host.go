package netsim

import (
	"fmt"

	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// FlowHandler receives packets addressed to one transport flow.
type FlowHandler interface {
	Deliver(pkt *packet.Packet)
}

// FlowHandlerFunc adapts a function to the FlowHandler interface.
type FlowHandlerFunc func(pkt *packet.Packet)

// Deliver calls f(pkt).
func (f FlowHandlerFunc) Deliver(pkt *packet.Packet) { f(pkt) }

// Host is an end system: it owns one uplink port toward its access switch
// and demultiplexes arriving packets to registered transport endpoints by
// flow id. Application-level request packets (FlagREQ) are routed to a
// control handler instead, which is how the incast aggregator's requests
// reach worker applications.
type Host struct {
	id    packet.NodeID
	name  string
	sched *sim.Scheduler

	uplink *Port
	flows  map[packet.FlowID]FlowHandler
	pool   *packet.Pool // optional packet freelist; nil = pooling off

	delivered      int64 // packets handed to Deliver (any disposition)
	deliveredBytes int64

	// OnControl handles REQ packets (application requests).
	OnControl func(pkt *packet.Packet)
	// OnUnclaimed, if set, observes packets for flows with no registered
	// handler; otherwise they are silently dropped (like RST-less discard).
	OnUnclaimed func(pkt *packet.Packet)
	// OnDeliver, if set, observes every arriving packet before demux — data
	// with its final (post-marking) ECN codepoint and returning ACKs alike,
	// in the exact order the endpoint processes them, which is what lets the
	// oracle conformance layer replay a host's ingress synchronously even
	// under fault-induced reordering. The packet is recycled after demux;
	// observers must copy fields out synchronously.
	OnDeliver func(pkt *packet.Packet)
}

// NewHost creates a host. The uplink is attached by the topology builder
// through SetUplink.
func NewHost(sched *sim.Scheduler, id packet.NodeID, name string) *Host {
	return &Host{
		id:    id,
		name:  name,
		sched: sched,
		flows: make(map[packet.FlowID]FlowHandler),
	}
}

// ID returns the host's node id.
func (h *Host) ID() packet.NodeID { return h.id }

// Name returns the host's human-readable name.
func (h *Host) Name() string { return h.name }

// Scheduler returns the event scheduler driving this host.
func (h *Host) Scheduler() *sim.Scheduler { return h.sched }

// SetUplink attaches the host's single output port.
func (h *Host) SetUplink(p *Port) { h.uplink = p }

// SetPool attaches a packet freelist: AllocPacket draws from it and Deliver
// frees consumed packets back to it. Installed by Topology.EnablePacketPool.
func (h *Host) SetPool(pool *packet.Pool) { h.pool = pool }

// AllocPacket returns a zeroed packet for the transport to fill and Send.
// With no pool attached it simply allocates.
//
// state: mint
func (h *Host) AllocPacket() *packet.Packet { return h.pool.Get() }

// Uplink returns the host's output port (nil before wiring).
func (h *Host) Uplink() *Port { return h.uplink }

// DeliveredPkts returns the number of packets this host has received
// (control, data and unclaimed alike) — the delivery side of the
// conservation ledger: sent = delivered + dropped + lost + blackholed.
func (h *Host) DeliveredPkts() int64 { return h.delivered }

// DeliveredBytes returns the bytes this host has received.
func (h *Host) DeliveredBytes() int64 { return h.deliveredBytes }

// Register binds a flow id to a transport endpoint. Registering the same
// flow twice panics: flow ids are globally unique in this simulator.
func (h *Host) Register(flow packet.FlowID, fh FlowHandler) {
	if _, dup := h.flows[flow]; dup {
		panic(fmt.Sprintf("netsim: flow %d already registered on %s", flow, h.name))
	}
	h.flows[flow] = fh
}

// Unregister removes a flow binding (e.g. when a connection closes).
func (h *Host) Unregister(flow packet.FlowID) {
	delete(h.flows, flow)
}

// Send stamps the packet's source and injects it into the host's uplink.
// Ownership moves with the packet: from here it is the network's to drop,
// lose or deliver, and the sender must not touch it again.
//
// state: xfer pkt
func (h *Host) Send(pkt *packet.Packet) {
	if h.uplink == nil {
		panic(fmt.Sprintf("netsim: host %s has no uplink", h.name))
	}
	pkt.Src = h.id
	h.uplink.Enqueue(pkt)
}

// Deliver demultiplexes an arriving packet. The host is the packet's final
// owner: once the handler returns, the packet is recycled (when a pool is
// attached), so handlers must copy out any fields they keep.
//
// state: xfer pkt
func (h *Host) Deliver(pkt *packet.Packet) {
	h.delivered++
	h.deliveredBytes += int64(pkt.Size())
	if h.OnDeliver != nil {
		h.OnDeliver(pkt)
	}
	if pkt.Flags.Has(packet.FlagREQ) {
		if h.OnControl != nil {
			h.OnControl(pkt)
		}
	} else if fh, ok := h.flows[pkt.Flow]; ok {
		fh.Deliver(pkt)
	} else if h.OnUnclaimed != nil {
		h.OnUnclaimed(pkt)
	}
	h.pool.Put(pkt)
}
