package netsim

import (
	"testing"

	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// TestLinkBlackhole pins the blackout primitive: while a link is down,
// every packet handed to Propagate is destroyed and counted; after the
// link comes back up, traffic flows again. Packets destroyed while down
// appear in the conservation ledger as blackholed.
func TestLinkBlackhole(t *testing.T) {
	s, pool, port, dst := benchPath(t)
	link := port.Link()

	send := func(n int) {
		for i := 0; i < n; i++ {
			pkt := pool.Get()
			fill(pkt, dst, int64(i)*packet.MSS)
			port.Enqueue(pkt)
		}
		s.Run()
	}

	link.SetDown(true)
	if !link.IsDown() {
		t.Fatal("link not down after SetDown(true)")
	}
	send(5)
	if got := link.Blackholed(); got != 5 {
		t.Fatalf("blackholed = %d, want 5", got)
	}
	wantBytes := int64(5 * (packet.MSS + packet.HeaderBytes))
	if got := link.BlackholedBytes(); got != wantBytes {
		t.Fatalf("blackholed bytes = %d, want %d", got, wantBytes)
	}
	if got := dst.DeliveredPkts(); got != 0 {
		t.Fatalf("delivered %d packets through a down link", got)
	}

	link.SetDown(false)
	send(3)
	if got := dst.DeliveredPkts(); got != 3 {
		t.Fatalf("delivered = %d after link restored, want 3", got)
	}
	if got := link.Blackholed(); got != 5 {
		t.Fatalf("blackholed grew to %d after restore, want 5", got)
	}
}

// TestLinkLossBytes pins the byte accounting added to the seeded-loss
// branch: lost packets and lost bytes move together.
func TestLinkLossBytes(t *testing.T) {
	s, pool, port, dst := benchPath(t)
	link := port.Link()
	link.SetLoss(1, 42) // drop everything

	for i := 0; i < 4; i++ {
		pkt := pool.Get()
		fill(pkt, dst, int64(i)*packet.MSS)
		port.Enqueue(pkt)
	}
	s.Run()
	if got := link.Lost(); got != 4 {
		t.Fatalf("lost = %d, want 4", got)
	}
	if got := link.LostBytes(); got != 4*int64(packet.MSS+packet.HeaderBytes) {
		t.Fatalf("lost bytes = %d, want %d", got, 4*int64(packet.MSS+packet.HeaderBytes))
	}
}

// TestPortPauseResume pins the host-stall primitive: a paused port accepts
// packets into its queue but clocks nothing out; Resume restarts
// transmission and the backlog drains in order.
func TestPortPauseResume(t *testing.T) {
	s, pool, port, dst := benchPath(t)

	port.Pause()
	for i := 0; i < 6; i++ {
		pkt := pool.Get()
		fill(pkt, dst, int64(i)*packet.MSS)
		port.Enqueue(pkt)
	}
	s.Run()
	if got := dst.DeliveredPkts(); got != 0 {
		t.Fatalf("paused port delivered %d packets, want 0", got)
	}
	if got := port.QueueLen(); got != 6 {
		t.Fatalf("paused port queued %d packets, want 6", got)
	}

	port.Resume()
	s.Run()
	if got := dst.DeliveredPkts(); got != 6 {
		t.Fatalf("delivered = %d after resume, want 6", got)
	}
	if port.QueueLen() != 0 {
		t.Fatalf("queue not drained after resume: %d packets", port.QueueLen())
	}
}

// TestPauseMidSerialization pauses while a packet is being clocked out:
// that packet must complete (the wire does not un-transmit), and the rest
// stay queued until Resume.
func TestPauseMidSerialization(t *testing.T) {
	s, pool, port, dst := benchPath(t)

	for i := 0; i < 3; i++ {
		pkt := pool.Get()
		fill(pkt, dst, int64(i)*packet.MSS)
		port.Enqueue(pkt)
	}
	// First packet is mid-serialization now; freeze before it completes.
	port.Pause()
	s.Run()
	if got := dst.DeliveredPkts(); got != 1 {
		t.Fatalf("delivered = %d with pause mid-serialization, want 1", got)
	}
	port.Resume()
	s.Run()
	if got := dst.DeliveredPkts(); got != 3 {
		t.Fatalf("delivered = %d after resume, want 3", got)
	}
}

// TestPortBufferShrink shrinks the buffer below the live occupancy: queued
// packets stay, new arrivals tail-drop until the queue drains under the new
// limit, and nothing trips the occupancy invariant.
func TestPortBufferShrink(t *testing.T) {
	s, pool, port, dst := benchPath(t)

	port.Pause() // hold the queue so occupancy is deterministic
	for i := 0; i < 8; i++ {
		pkt := pool.Get()
		fill(pkt, dst, int64(i)*packet.MSS)
		port.Enqueue(pkt)
	}
	occ := port.QueueBytes()
	port.SetBufferBytes(occ / 2) // below current occupancy

	pkt := pool.Get()
	fill(pkt, dst, 99*packet.MSS)
	port.Enqueue(pkt)
	if got := port.Stats().DroppedPkts; got != 1 {
		t.Fatalf("dropped = %d after shrink, want 1", got)
	}
	if got := port.QueueLen(); got != 8 {
		t.Fatalf("queue len = %d, want 8 (drop must not evict)", got)
	}

	port.Resume()
	s.Run() // drains fully; occupancy back under the shrunk limit
	pkt = pool.Get()
	fill(pkt, dst, 100*packet.MSS)
	port.Enqueue(pkt)
	s.Run()
	if got := dst.DeliveredPkts(); got != 9 {
		t.Fatalf("delivered = %d, want 9 (8 held + 1 after drain)", got)
	}
}

// TestPortSetMarkThreshold lowers K mid-run and checks the next arrival
// above the new threshold gets CE-marked.
func TestPortSetMarkThreshold(t *testing.T) {
	s, pool, port, dst := benchPath(t)

	port.Pause()
	for i := 0; i < 4; i++ {
		pkt := pool.Get()
		fill(pkt, dst, int64(i)*packet.MSS)
		port.Enqueue(pkt)
	}
	if got := port.Stats().MarkedPkts; got != 0 {
		t.Fatalf("marked %d packets below the default K", got)
	}
	port.SetMarkThreshold(1) // any nonempty queue now marks
	pkt := pool.Get()
	fill(pkt, dst, 10*packet.MSS)
	port.Enqueue(pkt)
	if got := port.Stats().MarkedPkts; got != 1 {
		t.Fatalf("marked = %d after lowering K, want 1", got)
	}
	port.Resume()
	s.Run()
}

// TestLinkSetRateSetDelay verifies mid-run rate/delay mutation changes the
// timing of subsequent packets: halving the rate doubles serialization,
// and a larger delay pushes arrival out.
func TestLinkSetRateSetDelay(t *testing.T) {
	s := sim.NewScheduler()
	pool := &packet.Pool{}
	dst := NewHost(s, 2, "sink")
	dst.SetPool(pool)
	link := NewLink(s, dst, 1e9, 10*sim.Microsecond)
	link.SetPool(pool)
	port := NewPort(s, link, DefaultPortConfig())
	port.SetPool(pool)

	arrival := func() sim.Time {
		pkt := pool.Get()
		fill(pkt, dst, 0)
		before := dst.DeliveredPkts()
		port.Enqueue(pkt)
		s.Run()
		if dst.DeliveredPkts() != before+1 {
			t.Fatal("packet not delivered")
		}
		return s.Now()
	}

	start := s.Now()
	first := arrival().Sub(start)

	link.SetRate(link.RateBps / 2)
	start = s.Now()
	second := arrival().Sub(start)
	// Serialization doubles; propagation unchanged. The total must grow by
	// exactly the original serialization time.
	size := packet.MSS + packet.HeaderBytes
	wantGrowth := sim.Duration(int64(size) * 8 * int64(sim.Second) / 1e9)
	if second-first != wantGrowth {
		t.Fatalf("half-rate transfer took %v, want %v more than %v", second, wantGrowth, first)
	}

	link.SetRate(1e9)
	link.SetDelay(30 * sim.Microsecond)
	start = s.Now()
	third := arrival().Sub(start)
	if third-first != 20*sim.Microsecond {
		t.Fatalf("delay change: transfer took %v, want %v + 20us", third, first)
	}
}
