package netsim

import (
	"fmt"

	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// Switch is an output-queued store-and-forward switch. Each output port has
// its own static buffer (the paper's "static 128KB shared buffer in each
// port") and applies the DCTCP marking rule independently. Forwarding is by
// a static routing table mapping destination hosts to output ports.
type Switch struct {
	id    packet.NodeID
	name  string
	sched *sim.Scheduler

	ports  []*Port
	routes map[packet.NodeID]*Port
}

// NewSwitch creates a switch with no ports. Ports are added with AddPort
// and routes installed with AddRoute by the topology builder.
func NewSwitch(sched *sim.Scheduler, id packet.NodeID, name string) *Switch {
	return &Switch{
		id:     id,
		name:   name,
		sched:  sched,
		routes: make(map[packet.NodeID]*Port),
	}
}

// ID returns the switch's node id.
func (s *Switch) ID() packet.NodeID { return s.id }

// Name returns the human-readable switch name (e.g. "switch1").
func (s *Switch) Name() string { return s.name }

// AddPort attaches an output port feeding a link to a neighbour and
// returns it.
func (s *Switch) AddPort(link *Link, cfg PortConfig) *Port {
	p := NewPort(s.sched, link, cfg)
	s.ports = append(s.ports, p)
	return p
}

// Ports returns all output ports in attachment order.
func (s *Switch) Ports() []*Port { return s.ports }

// AddRoute installs dst -> out in the forwarding table.
func (s *Switch) AddRoute(dst packet.NodeID, out *Port) {
	s.routes[dst] = out
}

// RouteTo returns the output port used to reach dst, or nil.
func (s *Switch) RouteTo(dst packet.NodeID) *Port { return s.routes[dst] }

// SwitchStats aggregates counters over all of a switch's output ports.
type SwitchStats struct {
	Ports         int
	EnqueuedPkts  int64
	DequeuedPkts  int64
	DroppedPkts   int64
	DroppedBytes  int64
	MarkedPkts    int64
	MaxQueueBytes int // deepest queue reached on any port
}

// AggregateStats sums the per-port counters.
func (s *Switch) AggregateStats() SwitchStats {
	agg := SwitchStats{Ports: len(s.ports)}
	for _, p := range s.ports {
		st := p.Stats()
		agg.EnqueuedPkts += st.EnqueuedPkts
		agg.DequeuedPkts += st.DequeuedPkts
		agg.DroppedPkts += st.DroppedPkts
		agg.DroppedBytes += st.DroppedBytes
		agg.MarkedPkts += st.MarkedPkts
		if st.MaxQueueBytes > agg.MaxQueueBytes {
			agg.MaxQueueBytes = st.MaxQueueBytes
		}
	}
	return agg
}

// Deliver forwards an arriving packet toward its destination. An unknown
// destination panics: the topologies in this repository are fully
// statically routed, so a miss is always a wiring bug.
//
// state: xfer pkt
func (s *Switch) Deliver(pkt *packet.Packet) {
	out, ok := s.routes[pkt.Dst]
	if !ok {
		panic(fmt.Sprintf("netsim: %s has no route to node %d (pkt %v)", s.name, pkt.Dst, pkt))
	}
	out.Enqueue(pkt)
}
