package main

import (
	"fmt"
	"os"
	"path/filepath"
)

// validateFlags rejects scale settings the battery cannot run: every figure
// needs at least one measured round after warmup.
func validateFlags(rounds, warmup int) error {
	switch {
	case rounds <= 0:
		return fmt.Errorf("-rounds %d: need at least one round", rounds)
	case warmup < 0:
		return fmt.Errorf("-warmup %d: cannot be negative", warmup)
	case warmup >= rounds:
		return fmt.Errorf("-warmup %d >= -rounds %d: no measured rounds remain", warmup, rounds)
	}
	return nil
}

// validateSweepFlags rejects orchestration settings the sweep-backed
// sections cannot honor: the worker pool needs at least one worker, the
// cache directory's parent must already exist (a typo'd path should fail
// loudly, not mint a directory tree), and resume without a cache is
// meaningless.
func validateSweepFlags(jobs int, cacheDir string, resume bool) error {
	switch {
	case jobs < 1:
		return fmt.Errorf("-jobs %d: need at least one worker", jobs)
	case resume && cacheDir == "":
		return fmt.Errorf("-resume: requires -cache-dir (resume replays the cache)")
	}
	if cacheDir != "" {
		parent := filepath.Dir(filepath.Clean(cacheDir))
		if fi, err := os.Stat(parent); err != nil || !fi.IsDir() {
			return fmt.Errorf("-cache-dir %s: parent directory %s does not exist", cacheDir, parent)
		}
	}
	return nil
}
