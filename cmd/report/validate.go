package main

import "fmt"

// validateFlags rejects scale settings the battery cannot run: every figure
// needs at least one measured round after warmup.
func validateFlags(rounds, warmup int) error {
	switch {
	case rounds <= 0:
		return fmt.Errorf("-rounds %d: need at least one round", rounds)
	case warmup < 0:
		return fmt.Errorf("-warmup %d: cannot be negative", warmup)
	case warmup >= rounds:
		return fmt.Errorf("-warmup %d >= -rounds %d: no measured rounds remain", warmup, rounds)
	}
	return nil
}
