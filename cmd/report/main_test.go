package main

import "testing"

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name           string
		rounds, warmup int
		wantErr        bool
	}{
		{"defaults", 50, 10, false},
		{"paper scale", 1000, 10, false},
		{"single measured round", 1, 0, false},
		{"zero rounds", 0, 0, true},
		{"negative rounds", -1, 0, true},
		{"negative warmup", 50, -2, true},
		{"warmup equals rounds", 10, 10, true},
		{"warmup exceeds rounds", 10, 20, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.rounds, c.warmup)
			if (err != nil) != c.wantErr {
				t.Errorf("validateFlags(%d, %d) = %v, wantErr=%v", c.rounds, c.warmup, err, c.wantErr)
			}
		})
	}
}

func TestValidateSweepFlags(t *testing.T) {
	parent := t.TempDir()
	cases := []struct {
		name     string
		jobs     int
		cacheDir string
		resume   bool
		wantErr  bool
	}{
		{"defaults, no cache", 4, "", false, false},
		{"single worker", 1, "", false, false},
		{"cache under existing parent", 2, parent + "/cache", false, false},
		{"resume with cache", 2, parent + "/cache", true, false},
		{"zero jobs", 0, "", false, true},
		{"negative jobs", -3, "", false, true},
		{"nonexistent cache parent", 2, parent + "/no/such/cache", false, true},
		{"resume without cache", 2, "", true, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateSweepFlags(c.jobs, c.cacheDir, c.resume)
			if (err != nil) != c.wantErr {
				t.Errorf("validateSweepFlags(%d, %q, %v) = %v, wantErr=%v",
					c.jobs, c.cacheDir, c.resume, err, c.wantErr)
			}
		})
	}
}
