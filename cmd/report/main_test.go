package main

import "testing"

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name           string
		rounds, warmup int
		wantErr        bool
	}{
		{"defaults", 50, 10, false},
		{"paper scale", 1000, 10, false},
		{"single measured round", 1, 0, false},
		{"zero rounds", 0, 0, true},
		{"negative rounds", -1, 0, true},
		{"negative warmup", 50, -2, true},
		{"warmup equals rounds", 10, 10, true},
		{"warmup exceeds rounds", 10, 20, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.rounds, c.warmup)
			if (err != nil) != c.wantErr {
				t.Errorf("validateFlags(%d, %d) = %v, wantErr=%v", c.rounds, c.warmup, err, c.wantErr)
			}
		})
	}
}
