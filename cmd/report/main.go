// Command report runs the complete reproduction battery — every figure and
// table of the paper's evaluation plus the ablations — and prints a single
// consolidated report with the paper's expectation next to each measured
// result. EXPERIMENTS.md is generated from this tool's output.
//
//	report              # default scale (~minutes)
//	report -rounds 200  # closer to paper statistics (slower)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	dcp "dctcpplus"
)

var (
	rounds = flag.Int("rounds", 50, "incast rounds per experiment point")
	warmup = flag.Int("warmup", 10, "initial rounds excluded from statistics")
	seed   = flag.Uint64("seed", 1, "experiment seed")
	telOut = flag.String("telemetry", "",
		"write the battery's instrument dump to this file as JSON lines, plus a Prometheus text-format sibling (<path>.prom)")
	baseline = flag.String("baseline", "",
		"write the run manifest (config, seed, code version, instrument dump) to this JSON file; diffable against BENCH_baseline.json")
	faults = flag.Bool("faults", false,
		"append the fault-injection resilience sweep (DCTCP vs DCTCP+ clean and under each fault class)")
	jobs     = flag.Int("jobs", dcp.DefaultSweepWorkers(), "concurrent experiment points (workers)")
	cacheDir = flag.String("cache-dir", "",
		"content-addressed result cache for the sweep-backed sections (empty disables caching)")
	resume = flag.Bool("resume", false, "continue a battery whose manifest already exists in -cache-dir")
	oracle = flag.Bool("oracle", false,
		"run the ablation and resilience sections under the trace-conformance oracle; violations fail the report")
)

// figure is the common surface of the typed per-figure experiments.
type figure interface {
	Run()
	Render(w io.Writer)
}

func section(title, expectation string) {
	fmt.Printf("\n%s\n", title)
	for range title {
		fmt.Print("-")
	}
	fmt.Printf("\npaper: %s\n\n", expectation)
}

func main() {
	flag.Parse()
	if err := validateFlags(*rounds, *warmup); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(2)
	}
	if err := validateSweepFlags(*jobs, *cacheDir, *resume); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(2)
	}
	dcp.SetParallelism(*jobs)
	start := time.Now()
	scale := dcp.Scale{Rounds: *rounds, Warmup: *warmup, Seed: *seed}
	if *telOut != "" || *baseline != "" {
		scale.Telemetry = dcp.NewRegistry()
	}
	fmt.Println("DCTCP+ reproduction report")
	fmt.Printf("rounds=%d warmup=%d seed=%d\n", *rounds, *warmup, *seed)

	steps := []struct {
		title, expectation string
		fig                figure
	}{
		{
			"Figure 1: goodput vs concurrent flows (DCTCP, TCP)",
			"TCP collapses just past 10 flows; DCTCP past ~35",
			withScale(dcp.NewFigure1(), scale),
		},
		{
			"Figure 2 + Table I: cwnd distribution and timeout taxonomy",
			"N>=20: DCTCP mass piles on 1-2 MSS; floor/ECE coincidence common; FLoss dominates deep collapse",
			withScale(dcp.NewFigure2Table1(), scale),
		},
		{
			"Figure 6: partial (no desync) vs full DCTCP+",
			"partial holds past DCTCP's limit but trails the full mechanism at high N",
			withScale(dcp.NewFigure6(), scale),
		},
		{
			"Figure 7: full DCTCP+ vs DCTCP vs TCP",
			"DCTCP+ sustains 600-900 Mbps, 8-17ms FCT beyond 200 flows; DCTCP/TCP sit in RTO collapse",
			withScale(dcp.NewFigure7(), scale),
		},
		{
			"Figure 8: DCTCP+ (RTOmin 200ms) vs DCTCP/TCP at RTOmin 10ms",
			"short RTO lifts DCTCP/TCP but DCTCP+ still wins without touching the timer",
			withScale(dcp.NewFigure8(), scale),
		},
		{
			"Figure 9: bottleneck queue-length CDF (bytes, 100us samples)",
			"DCTCP+ keeps a shorter, stabler queue; the gap widens with N",
			withScale(dcp.NewFigure9(), scale),
		},
		{
			"Figures 11 + 12: incast with 2 persistent background flows",
			"DCTCP+ keeps near-no-background goodput and far shorter FCT; long flows share the residue",
			withScale(dcp.NewFigure11_12(), scale),
		},
		{
			"Figure 13: benchmark traffic FCT (queries / background), RTOmin 10ms",
			"DCTCP+ wins mean and especially p99 query FCT; background barely affected",
			withSeed13(dcp.NewFigure13(), scale),
		},
		{
			"Figure 14: convergence, 50 DCTCP+ flows x 4MB",
			"buffer overflows during the first rounds, then the regulation converges",
			withScale14(dcp.NewFigure14(), scale),
		},
	}
	for _, st := range steps {
		st.fig.Run()
		section(st.title, st.expectation)
		st.fig.Render(os.Stdout)
	}

	violations := ablations(scale, *oracle)
	if *faults {
		violations += resilience(scale, *oracle)
	}
	if err := writeTelemetry(scale, time.Since(start)); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	fmt.Printf("\nreport completed in %v\n", time.Since(start).Round(time.Second))
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "report: %d oracle violations\n", violations)
		os.Exit(1)
	}
	if *oracle {
		fmt.Println("oracle: clean")
	}
}

// oracleCount reports a direct run's conformance violations to stderr and
// returns the count, so the battery can fail at the end without losing the
// rest of its output.
func oracleCount(label string, r dcp.IncastResult) int64 {
	if r.OracleTotal == 0 {
		return 0
	}
	fmt.Fprintf(os.Stderr, "report: %s: %d oracle violations\n", label, r.OracleTotal)
	for i, v := range r.OracleViolations {
		if i >= 3 {
			fmt.Fprintf(os.Stderr, "  ... (%d more)\n", len(r.OracleViolations)-i)
			break
		}
		fmt.Fprintln(os.Stderr, " ", v)
	}
	return r.OracleTotal
}

// writeTelemetry dumps the shared registry to the -telemetry and -baseline
// outputs.
func writeTelemetry(scale dcp.Scale, wall time.Duration) error {
	if scale.Telemetry == nil {
		return nil
	}
	snap := scale.Telemetry.Snapshot()
	if *telOut != "" {
		f, err := os.Create(*telOut)
		if err != nil {
			return err
		}
		if err := snap.WriteJSONLines(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		pf, err := os.Create(*telOut + ".prom")
		if err != nil {
			return err
		}
		if err := snap.WritePrometheus(pf); err != nil {
			pf.Close()
			return err
		}
		if err := pf.Close(); err != nil {
			return err
		}
		fmt.Printf("\ntelemetry: %d instruments -> %s (and %s.prom)\n",
			len(snap.Instruments), *telOut, *telOut)
	}
	if *baseline != "" {
		m := dcp.NewManifest("report", *seed)
		m.SetConfig("rounds", *rounds)
		m.SetConfig("warmup", *warmup)
		m.Finish(scale.Telemetry, wall)
		if err := dcp.WriteManifestFile(*baseline, m); err != nil {
			return err
		}
		fmt.Printf("baseline manifest -> %s\n", *baseline)
	}
	return nil
}

func withScale[F interface{ figure }](f F, sc dcp.Scale) F {
	switch v := any(f).(type) {
	case *dcp.Figure1:
		v.Scale = sc
	case *dcp.Figure2Table1:
		v.Scale = sc
	case *dcp.Figure7:
		v.Scale = sc
	case *dcp.Figure9:
		v.Scale = sc
	case *dcp.Figure11_12:
		v.Scale = sc
	}
	return f
}

func withSeed13(f *dcp.Figure13, sc dcp.Scale) *dcp.Figure13 {
	f.Seed = sc.Seed
	return f
}

func withScale14(f *dcp.Figure14, sc dcp.Scale) *dcp.Figure14 {
	f.Scale = sc
	return f
}

// resilience runs the fault-injection sweep behind the EXPERIMENTS.md
// resilience table: DCTCP vs DCTCP+ at the massive-flow operating point
// (N=150, RTOmin 10ms), clean and under each fault class in isolation,
// with fault windows auto-calibrated to each protocol's run span. Cells
// deliberately skip the shared registry: the same {proto, flows} label set
// across rows would merge instruments from different fault classes into
// one indistinguishable pile.
func resilience(sc dcp.Scale, oracleOn bool) int64 {
	section("Resilience: DCTCP vs DCTCP+ under injected faults (N=150, RTOmin 10ms)",
		"DCTCP+ keeps its advantage outright and degrades no worse than DCTCP under every fault class")
	base := dcp.DefaultIncastOptions(dcp.ProtoDCTCP, 150)
	base.Rounds, base.WarmupRounds = 10, 2
	base.RTOMin = 10 * dcp.Millisecond
	base.Testbed.Seed = sc.Seed
	base.Oracle = oracleOn
	protos := []dcp.Protocol{dcp.ProtoDCTCP, dcp.ProtoDCTCPPlus}
	rows := dcp.RunResilience(dcp.ResilienceOptions{
		Base:      base,
		Protocols: protos,
		Gen:       dcp.FaultGenConfig{Seed: sc.Seed},
	})
	dcp.PrintResilienceRows(os.Stdout, protos, rows)
	var bad int64
	for _, row := range rows {
		for c, res := range row.Results {
			bad += oracleCount("resilience "+row.Label+"/"+protos[c].String(), res)
		}
	}
	return bad
}

func ablations(sc dcp.Scale, oracleOn bool) int64 {
	section("Ablations (DESIGN.md): backoff unit / divisor / desync / min-cwnd / compositions",
		"unit ~ effective RTT is the sweet spot; divisor 2; min-cwnd alone does not rescue DCTCP; the mechanism composes with reno/d2tcp/HULL")
	var bad int64
	opts := func(p dcp.Protocol, n int) dcp.IncastOptions {
		o := dcp.DefaultIncastOptions(p, n)
		o.Rounds = sc.Rounds
		o.WarmupRounds = sc.Warmup
		o.Testbed.Seed = sc.Seed
		o.Telemetry = sc.Telemetry
		o.Oracle = oracleOn
		return o
	}
	for _, unit := range []dcp.Duration{100 * dcp.Microsecond, 400 * dcp.Microsecond,
		800 * dcp.Microsecond, 3200 * dcp.Microsecond} {
		cfg := dcp.DefaultEnhancementConfig()
		cfg.BackoffUnit = unit
		o := opts(dcp.ProtoDCTCPPlus, 120)
		o.Factory = dcp.DCTCPPlusFactory(o.RTOMin, o.Testbed.Seed, cfg)
		r := dcp.RunIncast(o)
		fmt.Printf("unit=%-8v   goodput=%5.0f Mbps fct=%7.2fms timeouts=%d\n",
			unit, r.GoodputMbps.Mean, r.FCTms.Mean, r.Timeouts)
		bad += oracleCount(fmt.Sprintf("ablation unit=%v", unit), r)
	}
	for _, div := range []float64{1.5, 2, 4, 8} {
		cfg := dcp.DefaultEnhancementConfig()
		cfg.DivisorFactor = div
		o := opts(dcp.ProtoDCTCPPlus, 120)
		o.Factory = dcp.DCTCPPlusFactory(o.RTOMin, o.Testbed.Seed, cfg)
		r := dcp.RunIncast(o)
		fmt.Printf("divisor=%-6v goodput=%5.0f Mbps fct=%7.2fms timeouts=%d\n",
			div, r.GoodputMbps.Mean, r.FCTms.Mean, r.Timeouts)
		bad += oracleCount(fmt.Sprintf("ablation divisor=%v", div), r)
	}
	// The standard-protocol comparison grid runs through the sweep
	// orchestrator: every cell is a plain (protocol, N) point, so it is
	// content-addressable and the -cache-dir/-resume flags apply. The
	// custom-factory loops above stay direct — a factory closure has no
	// canonical serialization to key a cache on.
	pt := func(proto string, n int) dcp.SweepPoint {
		return dcp.SweepPoint{
			Topo:         dcp.SweepTopoDefault,
			Proto:        proto,
			Flows:        n,
			RTOMin:       200 * dcp.Millisecond,
			Seed:         sc.Seed,
			Rounds:       sc.Rounds,
			WarmupRounds: sc.Warmup,
			TotalBytes:   1 << 20,
			Jitter:       4 * dcp.Millisecond,
			MaxSimTime:   30 * 60 * dcp.Second,
			Oracle:       oracleOn,
		}
	}
	runner := dcp.SweepRunner{Workers: *jobs, Resume: *resume, Telemetry: sc.Telemetry}
	if *cacheDir != "" {
		cache, err := dcp.OpenSweepCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		runner.Cache = cache
	}
	out, err := runner.RunPoints(context.Background(), "report-ablations", []dcp.SweepPoint{
		pt("dctcp+", 160),
		pt("dctcp+partial", 160),
		pt("dctcp", 80),
		pt("dctcp-min1", 80),
		pt("dctcp-min1", 120),
		pt("reno+", 80),
		pt("tcp", 80),
		pt("d2tcp", 120),
		pt("d2tcp+", 120),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	rows := make([]dcp.IncastResult, 0, len(out.Results))
	for _, r := range out.Results {
		row, err := r.Incast()
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		rows = append(rows, row)
	}
	dcp.PrintIncastRows(os.Stdout, rows)
	if runner.Cache != nil {
		fmt.Printf("(sweep cache: %d hit, %d run)\n", out.Hits, out.Misses)
	}
	if total, lines := dcp.SweepOracleReport(out.Results); total > 0 {
		for _, ln := range lines {
			fmt.Fprintln(os.Stderr, ln)
		}
		bad += total
	}

	// HULL composition: DCTCP over phantom-queue switches.
	hull := opts(dcp.ProtoDCTCP, 40)
	hull.Testbed = dcp.HULLTestbed()
	hull.Testbed.Seed = sc.Seed
	hull.QueueSampleEvery = 100 * dcp.Microsecond
	hr := dcp.RunIncast(hull)
	std := opts(dcp.ProtoDCTCP, 40)
	std.QueueSampleEvery = 100 * dcp.Microsecond
	sr := dcp.RunIncast(std)
	fmt.Printf("\nHULL composition at N=40: goodput=%0.f Mbps (std %0.f), queue p99=%0.f bytes (std %0.f)\n",
		hr.GoodputMbps.Mean, sr.GoodputMbps.Mean,
		hr.QueueCDF().Quantile(0.99), sr.QueueCDF().Quantile(0.99))
	bad += oracleCount("ablation hull-composition", hr)
	bad += oracleCount("ablation std-composition", sr)
	return bad
}
