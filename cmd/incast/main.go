// Command incast runs the paper's incast experiments (Figures 1, 6, 7, 8):
// N concurrent flows answer a barrier-synchronized aggregator through the
// bottleneck switch, and the tool reports per-point goodput, FCT and
// timeout counts.
//
// Examples:
//
//	incast -protocols dctcp,tcp -flows 1,5,10,20,35,50,80,100      # Fig. 1
//	incast -protocols dctcp+partial -flows 20,60,100,160,200       # Fig. 6
//	incast -protocols dctcp+,dctcp,tcp -flows 20,60,120,200        # Fig. 7
//	incast -protocols dctcp,tcp -rtomin 10ms -flows 20,60,120,200  # Fig. 8
//	incast -protocols dctcp+ -flows 200 -rounds 1000               # paper scale
//	incast -protocols dctcp+,dctcp -flows 150 -faults all          # resilience
//	incast -flows 200 -rounds 500 -cache-dir .sweepcache           # memoized
//
// The point grid runs through the sweep orchestrator (internal/sweep):
// -jobs bounds the worker pool, and with -cache-dir completed points are
// content-addressed on disk, so repeating or extending a run only computes
// what changed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	dcp "dctcpplus"
)

func main() {
	var (
		protocols = flag.String("protocols", "dctcp+,dctcp,tcp",
			"comma-separated protocols (tcp, dctcp, dctcp-min1, dctcp+, dctcp+partial, reno+)")
		flows  = flag.String("flows", "10,20,40,60,80,120,160,200", "comma-separated concurrent flow counts")
		rounds = flag.Int("rounds", 50, "request/response rounds per point (paper: 1000)")
		warmup = flag.Int("warmup", 10, "initial rounds excluded from statistics")
		total  = flag.Int64("total", 1<<20, "total bytes per round, split across flows (1MB/N each)")
		per    = flag.Int64("perflow", 0, "bytes per flow per round (overrides -total split)")
		rtoMin = flag.Duration("rtomin", 200*time.Millisecond, "minimum (and initial) RTO")
		jitter = flag.Duration("jitter", 4*time.Millisecond, "worker service jitter")
		seed   = flag.Uint64("seed", 1, "experiment seed")
		telOut = flag.String("telemetry", "",
			"write the sweep's instrument dump to this file as JSON lines")
		faults = flag.String("faults", "",
			"inject faults of these classes (comma-separated: blackout,loss,rate,delay,buffer,stall; \"all\" for every class; empty disables)")
		faultSeed = flag.Uint64("faultseed", 1, "seed of the fault-plan generator")
		jobs      = flag.Int("jobs", dcp.DefaultSweepWorkers(), "concurrent experiment points (workers)")
		cacheDir  = flag.String("cache-dir", "",
			"content-addressed result cache directory (empty disables caching)")
		resume = flag.Bool("resume", false, "continue a sweep whose manifest already exists in -cache-dir")
		oracle = flag.Bool("oracle", false,
			"run every point under the trace-conformance oracle; any violation fails the command")
		oracleTrace = flag.String("oracle-trace", "",
			"write rendered oracle violations (with minimized event windows) to this file; requires -oracle, written only on violation")
	)
	flag.Parse()

	if err := validateFlags(*rounds, *warmup, *total, *per, *rtoMin, *jitter); err != nil {
		fmt.Fprintln(os.Stderr, "incast:", err)
		os.Exit(2)
	}
	if err := validateSweepFlags(*jobs, *cacheDir, *resume); err != nil {
		fmt.Fprintln(os.Stderr, "incast:", err)
		os.Exit(2)
	}
	if err := validateOracleFlags(*oracle, *oracleTrace); err != nil {
		fmt.Fprintln(os.Stderr, "incast:", err)
		os.Exit(2)
	}

	// Parse the fault spec eagerly so a bad class list is a usage error,
	// even though the spec string itself rides into the sweep spec.
	if _, err := parseFaultGen(*faults, *faultSeed); err != nil {
		fmt.Fprintln(os.Stderr, "incast:", err)
		os.Exit(2)
	}

	var reg *dcp.Registry
	if *telOut != "" {
		reg = dcp.NewRegistry()
	}

	flowCounts, err := parseInts(*flows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "incast:", err)
		os.Exit(2)
	}

	spec := dcp.SweepSpec{
		Name:         "incast",
		Protocols:    splitCSV(*protocols),
		Flows:        flowCounts,
		RTOMins:      []dcp.Duration{dcp.Duration(*rtoMin)},
		Seeds:        []uint64{*seed},
		Faults:       []string{*faults},
		FaultSeed:    *faultSeed,
		Rounds:       *rounds,
		WarmupRounds: *warmup,
		TotalBytes:   *total,
		BytesPerFlow: *per,
		Jitter:       dcp.Duration(*jitter),
		Oracle:       *oracle,
	}
	runner := dcp.SweepRunner{Workers: *jobs, Resume: *resume, Telemetry: reg}
	if *cacheDir != "" {
		cache, err := dcp.OpenSweepCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "incast:", err)
			os.Exit(1)
		}
		runner.Cache = cache
	}
	out, err := runner.Run(context.Background(), spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "incast:", err)
		os.Exit(1)
	}

	all := make([]dcp.IncastResult, 0, len(out.Results))
	for _, r := range out.Results {
		row, err := r.Incast()
		if err != nil {
			fmt.Fprintln(os.Stderr, "incast:", err)
			os.Exit(1)
		}
		all = append(all, row)
	}
	dcp.PrintIncastRows(os.Stdout, all)
	if runner.Cache != nil {
		fmt.Printf("cache: %d hit, %d run -> %s\n", out.Hits, out.Misses, *cacheDir)
	}

	if reg != nil {
		f, err := os.Create(*telOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "incast:", err)
			os.Exit(1)
		}
		snap := reg.Snapshot()
		if err := snap.WriteJSONLines(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "incast:", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry: %d instruments -> %s\n", len(snap.Instruments), *telOut)
	}

	if *oracle {
		if total, lines := dcp.SweepOracleReport(out.Results); total > 0 {
			failOracle("incast", total, lines, *oracleTrace)
		}
		fmt.Printf("oracle: clean (%d points)\n", len(out.Results))
	}
}

// failOracle renders the sweep's conformance violations to stderr — and to
// the -oracle-trace file, which CI uploads as the failure artifact — then
// exits nonzero.
func failOracle(tool string, total int64, lines []string, trace string) {
	for _, ln := range lines {
		fmt.Fprintln(os.Stderr, ln)
	}
	if trace != "" {
		data := strings.Join(lines, "\n") + "\n"
		if err := os.WriteFile(trace, []byte(data), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		} else {
			fmt.Fprintf(os.Stderr, "%s: oracle trace -> %s\n", tool, trace)
		}
	}
	fmt.Fprintf(os.Stderr, "%s: %d oracle violations\n", tool, total)
	os.Exit(1)
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad flow count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func splitCSV(csv string) []string {
	var out []string
	for _, f := range strings.Split(csv, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
