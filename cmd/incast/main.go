// Command incast runs the paper's incast experiments (Figures 1, 6, 7, 8):
// N concurrent flows answer a barrier-synchronized aggregator through the
// bottleneck switch, and the tool reports per-point goodput, FCT and
// timeout counts.
//
// Examples:
//
//	incast -protocols dctcp,tcp -flows 1,5,10,20,35,50,80,100      # Fig. 1
//	incast -protocols dctcp+partial -flows 20,60,100,160,200       # Fig. 6
//	incast -protocols dctcp+,dctcp,tcp -flows 20,60,120,200        # Fig. 7
//	incast -protocols dctcp,tcp -rtomin 10ms -flows 20,60,120,200  # Fig. 8
//	incast -protocols dctcp+ -flows 200 -rounds 1000               # paper scale
//	incast -protocols dctcp+,dctcp -flows 150 -faults all          # resilience
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	dcp "dctcpplus"
)

func main() {
	var (
		protocols = flag.String("protocols", "dctcp+,dctcp,tcp",
			"comma-separated protocols (tcp, dctcp, dctcp-min1, dctcp+, dctcp+partial, reno+)")
		flows  = flag.String("flows", "10,20,40,60,80,120,160,200", "comma-separated concurrent flow counts")
		rounds = flag.Int("rounds", 50, "request/response rounds per point (paper: 1000)")
		warmup = flag.Int("warmup", 10, "initial rounds excluded from statistics")
		total  = flag.Int64("total", 1<<20, "total bytes per round, split across flows (1MB/N each)")
		per    = flag.Int64("perflow", 0, "bytes per flow per round (overrides -total split)")
		rtoMin = flag.Duration("rtomin", 200*time.Millisecond, "minimum (and initial) RTO")
		jitter = flag.Duration("jitter", 4*time.Millisecond, "worker service jitter")
		seed   = flag.Uint64("seed", 1, "experiment seed")
		telOut = flag.String("telemetry", "",
			"write the sweep's instrument dump to this file as JSON lines")
		faults = flag.String("faults", "",
			"inject faults of these classes (comma-separated: blackout,loss,rate,delay,buffer,stall; \"all\" for every class; empty disables)")
		faultSeed = flag.Uint64("faultseed", 1, "seed of the fault-plan generator")
	)
	flag.Parse()

	if err := validateFlags(*rounds, *warmup, *total, *per, *rtoMin, *jitter); err != nil {
		fmt.Fprintln(os.Stderr, "incast:", err)
		os.Exit(2)
	}

	gen, err := parseFaultGen(*faults, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "incast:", err)
		os.Exit(2)
	}

	var reg *dcp.Registry
	if *telOut != "" {
		reg = dcp.NewRegistry()
	}

	flowCounts, err := parseInts(*flows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "incast:", err)
		os.Exit(2)
	}

	var all []dcp.IncastResult
	for _, name := range strings.Split(*protocols, ",") {
		p, err := dcp.ParseProtocol(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "incast:", err)
			os.Exit(2)
		}
		o := dcp.DefaultIncastOptions(p, 0)
		o.Rounds = *rounds
		o.WarmupRounds = *warmup
		o.TotalBytes = *total
		o.BytesPerFlow = *per
		o.RTOMin = dcp.Duration(*rtoMin)
		o.Testbed.ServiceJitter = dcp.Duration(*jitter)
		o.Testbed.Seed = *seed
		o.Telemetry = reg
		o.Faults = gen
		all = append(all, dcp.SweepIncastParallel(o, flowCounts)...)
	}
	dcp.PrintIncastRows(os.Stdout, all)

	if reg != nil {
		f, err := os.Create(*telOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "incast:", err)
			os.Exit(1)
		}
		snap := reg.Snapshot()
		if err := snap.WriteJSONLines(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "incast:", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry: %d instruments -> %s\n", len(snap.Instruments), *telOut)
	}
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad flow count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}
