package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	dcp "dctcpplus"
)

// validateFlags rejects option combinations the sweep cannot run: the
// experiment needs at least one measured round, a positive byte budget and
// a positive RTO. Catching these at the flag boundary turns a hung or
// panicking sweep into a usage error.
func validateFlags(rounds, warmup int, total, perflow int64, rtoMin, jitter time.Duration) error {
	switch {
	case rounds <= 0:
		return fmt.Errorf("-rounds %d: need at least one round", rounds)
	case warmup < 0:
		return fmt.Errorf("-warmup %d: cannot be negative", warmup)
	case warmup >= rounds:
		return fmt.Errorf("-warmup %d >= -rounds %d: no measured rounds remain", warmup, rounds)
	case perflow < 0:
		return fmt.Errorf("-perflow %d: cannot be negative", perflow)
	case perflow == 0 && total <= 0:
		return fmt.Errorf("-total %d: need a positive byte budget (or set -perflow)", total)
	case rtoMin <= 0:
		return fmt.Errorf("-rtomin %v: must be positive", rtoMin)
	case jitter < 0:
		return fmt.Errorf("-jitter %v: cannot be negative", jitter)
	}
	return nil
}

// validateSweepFlags rejects orchestration settings the sweep runner
// cannot honor: the worker pool needs at least one worker, the cache
// directory's parent must already exist (a typo'd path should fail loudly,
// not mint a directory tree), and resume without a cache is meaningless.
func validateSweepFlags(jobs int, cacheDir string, resume bool) error {
	switch {
	case jobs < 1:
		return fmt.Errorf("-jobs %d: need at least one worker", jobs)
	case resume && cacheDir == "":
		return fmt.Errorf("-resume: requires -cache-dir (resume replays the cache)")
	}
	if cacheDir != "" {
		parent := filepath.Dir(filepath.Clean(cacheDir))
		if fi, err := os.Stat(parent); err != nil || !fi.IsDir() {
			return fmt.Errorf("-cache-dir %s: parent directory %s does not exist", cacheDir, parent)
		}
	}
	return nil
}

// validateOracleFlags ties the trace output to the checker: an -oracle-trace
// without -oracle would silently never be written, and (like -cache-dir) a
// typo'd trace path should fail at the flag boundary, not after the sweep.
func validateOracleFlags(oracle bool, trace string) error {
	if trace == "" {
		return nil
	}
	if !oracle {
		return fmt.Errorf("-oracle-trace: requires -oracle (the trace renders oracle violations)")
	}
	parent := filepath.Dir(filepath.Clean(trace))
	if fi, err := os.Stat(parent); err != nil || !fi.IsDir() {
		return fmt.Errorf("-oracle-trace %s: parent directory %s does not exist", trace, parent)
	}
	return nil
}

// parseFaultGen resolves the -faults/-faultseed flags into a fault-plan
// generator config. An empty spec disables injection (nil config); "all"
// or a comma-separated class list selects which pathologies to inject.
func parseFaultGen(spec string, seed uint64) (*dcp.FaultGenConfig, error) {
	if spec == "" {
		return nil, nil
	}
	classes, err := dcp.ParseFaultClasses(spec)
	if err != nil {
		return nil, err
	}
	g := dcp.DefaultFaultGenConfig(seed)
	g.Classes = classes
	return &g, nil
}
