package main

import (
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	const (
		rto = 200 * time.Millisecond
		jit = 4 * time.Millisecond
	)
	cases := []struct {
		name           string
		rounds, warmup int
		total, perflow int64
		rtoMin, jitter time.Duration
		wantErr        bool
	}{
		{"defaults", 50, 10, 1 << 20, 0, rto, jit, false},
		{"perflow overrides total", 50, 10, 0, 64 << 10, rto, jit, false},
		{"zero warmup", 1, 0, 1 << 20, 0, rto, jit, false},
		{"zero jitter", 50, 10, 1 << 20, 0, rto, 0, false},
		{"zero rounds", 0, 0, 1 << 20, 0, rto, jit, true},
		{"negative rounds", -5, 0, 1 << 20, 0, rto, jit, true},
		{"negative warmup", 50, -1, 1 << 20, 0, rto, jit, true},
		{"warmup swallows rounds", 10, 10, 1 << 20, 0, rto, jit, true},
		{"zero byte budget", 50, 10, 0, 0, rto, jit, true},
		{"negative total", 50, 10, -1, 0, rto, jit, true},
		{"negative perflow", 50, 10, 1 << 20, -4096, rto, jit, true},
		{"zero rtomin", 50, 10, 1 << 20, 0, 0, jit, true},
		{"negative jitter", 50, 10, 1 << 20, 0, rto, -time.Millisecond, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.rounds, c.warmup, c.total, c.perflow, c.rtoMin, c.jitter)
			if (err != nil) != c.wantErr {
				t.Errorf("validateFlags = %v, wantErr=%v", err, c.wantErr)
			}
		})
	}
}

func TestParseInts(t *testing.T) {
	cases := []struct {
		csv     string
		want    []int
		wantErr bool
	}{
		{"10,20,40", []int{10, 20, 40}, false},
		{" 1 , 2 ", []int{1, 2}, false},
		{"200", []int{200}, false},
		{"", nil, true},
		{"10,,20", nil, true},
		{"0", nil, true},
		{"-3", nil, true},
		{"ten", nil, true},
	}
	for _, c := range cases {
		got, err := parseInts(c.csv)
		if (err != nil) != c.wantErr {
			t.Errorf("parseInts(%q) err = %v, wantErr=%v", c.csv, err, c.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseInts(%q) = %v, want %v", c.csv, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseInts(%q)[%d] = %d, want %d", c.csv, i, got[i], c.want[i])
			}
		}
	}
}

func TestParseFaultGen(t *testing.T) {
	cases := []struct {
		spec        string
		wantNil     bool
		wantClasses int
		wantErr     bool
	}{
		{"", true, 0, false},
		{"all", false, 6, false},
		{"blackout", false, 1, false},
		{"loss,stall", false, 2, false},
		{"blackout, rate ", false, 2, false},
		{"bogus", false, 0, true},
		{"loss,,stall", false, 0, true},
	}
	for _, c := range cases {
		gen, err := parseFaultGen(c.spec, 7)
		if (err != nil) != c.wantErr {
			t.Errorf("parseFaultGen(%q) err = %v, wantErr=%v", c.spec, err, c.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if (gen == nil) != c.wantNil {
			t.Errorf("parseFaultGen(%q) nil = %v, want %v", c.spec, gen == nil, c.wantNil)
			continue
		}
		if gen == nil {
			continue
		}
		if gen.Seed != 7 {
			t.Errorf("parseFaultGen(%q) seed = %d, want 7", c.spec, gen.Seed)
		}
		if len(gen.Classes) != c.wantClasses {
			t.Errorf("parseFaultGen(%q) classes = %d, want %d", c.spec, len(gen.Classes), c.wantClasses)
		}
	}
}

func TestValidateSweepFlags(t *testing.T) {
	parent := t.TempDir()
	cases := []struct {
		name     string
		jobs     int
		cacheDir string
		resume   bool
		wantErr  bool
	}{
		{"defaults, no cache", 4, "", false, false},
		{"single worker", 1, "", false, false},
		{"cache under existing parent", 2, parent + "/cache", false, false},
		{"resume with cache", 2, parent + "/cache", true, false},
		{"zero jobs", 0, "", false, true},
		{"negative jobs", -3, "", false, true},
		{"nonexistent cache parent", 2, parent + "/no/such/cache", false, true},
		{"resume without cache", 2, "", true, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateSweepFlags(c.jobs, c.cacheDir, c.resume)
			if (err != nil) != c.wantErr {
				t.Errorf("validateSweepFlags(%d, %q, %v) = %v, wantErr=%v",
					c.jobs, c.cacheDir, c.resume, err, c.wantErr)
			}
		})
	}
}

func TestValidateOracleFlags(t *testing.T) {
	parent := t.TempDir()
	cases := []struct {
		name    string
		oracle  bool
		trace   string
		wantErr bool
	}{
		{"both off", false, "", false},
		{"oracle without trace", true, "", false},
		{"oracle with trace", true, parent + "/viol.txt", false},
		{"trace without oracle", false, parent + "/viol.txt", true},
		{"nonexistent trace parent", true, parent + "/no/such/viol.txt", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateOracleFlags(c.oracle, c.trace)
			if (err != nil) != c.wantErr {
				t.Errorf("validateOracleFlags(%v, %q) = %v, wantErr=%v",
					c.oracle, c.trace, err, c.wantErr)
			}
		})
	}
}
