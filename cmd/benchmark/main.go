// Command benchmark runs the paper's §VI-C and §VI-D experiments:
//
//   - The default mode reproduces Figure 13: query traffic (2KB fan-in
//     responses from every worker) mixed with heavy-tailed background
//     flows, comparing protocols at RTOmin = 10ms. The paper generates
//     7,000 queries and 7,000 background flows; -queries/-background set
//     the scale.
//
//   - With -incast N, it instead reproduces Figures 11 and 12: the basic
//     incast with two persistent background flows sharing the bottleneck.
//
// Examples:
//
//	benchmark -queries 1000 -background 1000
//	benchmark -queries 7000 -background 7000        # paper scale
//	benchmark -incast 20,60,120,200                 # Figs. 11/12
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	dcp "dctcpplus"
)

func main() {
	var (
		protocols  = flag.String("protocols", "dctcp+,dctcp", "comma-separated protocols")
		queries    = flag.Int("queries", 1000, "number of query transactions (paper: 7000)")
		background = flag.Int("background", 1000, "number of background flows (paper: 7000)")
		short      = flag.Int("short", 0, "number of short-message flows (50KB-1MB)")
		rtoMin     = flag.Duration("rtomin", 10*time.Millisecond, "minimum (and initial) RTO")
		maxBg      = flag.Int64("maxbg", 10<<20, "largest background flow in bytes")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		incast     = flag.String("incast", "", "run Figs. 11/12 instead: comma-separated incast flow counts")
		rounds     = flag.Int("rounds", 50, "incast mode: rounds per point")
		warmup     = flag.Int("warmup", 10, "incast mode: warmup rounds excluded")
	)
	flag.Parse()

	protoList, err := parseProtocols(*protocols)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmark:", err)
		os.Exit(2)
	}

	if *incast != "" {
		runBackgroundIncast(protoList, *incast, *rounds, *warmup, *seed)
		return
	}

	var all []dcp.BenchmarkResult
	for _, p := range protoList {
		o := dcp.DefaultBenchmarkOptions(p)
		o.RTOMin = dcp.Duration(*rtoMin)
		o.Testbed.Seed = *seed
		o.Traffic.Queries = *queries
		o.Traffic.ShortFlows = *short
		o.Traffic.BackgroundFlows = *background
		o.Traffic.BackgroundMaxBytes = *maxBg
		all = append(all, dcp.RunBenchmark(o))
	}
	fmt.Println("Figure 13: benchmark traffic FCT (ms) — queries and background flows")
	dcp.PrintBenchmarkRows(os.Stdout, all)
}

func runBackgroundIncast(protoList []dcp.Protocol, flows string, rounds, warmup int, seed uint64) {
	flowCounts, err := parseInts(flows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmark:", err)
		os.Exit(2)
	}
	var all []dcp.BackgroundIncastResult
	for _, p := range protoList {
		o := dcp.DefaultBackgroundIncastOptions(p, 0)
		o.Incast.Rounds = rounds
		o.Incast.WarmupRounds = warmup
		o.Incast.Testbed.Seed = seed
		all = append(all, dcp.SweepBackgroundIncastParallel(o, flowCounts)...)
	}
	fmt.Println("Figures 11+12: incast with two persistent background flows")
	dcp.PrintBackgroundIncastRows(os.Stdout, all)
}

func parseProtocols(csv string) ([]dcp.Protocol, error) {
	var out []dcp.Protocol
	for _, name := range strings.Split(csv, ",") {
		p, err := dcp.ParseProtocol(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad flow count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}
