// Command queuestat samples the bottleneck switch queue every 100us, as
// the paper does on Switch 1, and reports either the queue-length CDF
// (Figure 9) or the convergence time series of Figure 14 (50 DCTCP+ flows
// at 4MB each: the buffer overflows for the first rounds, then the
// regulation converges).
//
// Examples:
//
//	queuestat -protocols dctcp+,dctcp,tcp -flows 30,50,80   # Fig. 9
//	queuestat -trace                                        # Fig. 14
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	dcp "dctcpplus"
)

func main() {
	var (
		protocols = flag.String("protocols", "dctcp+,dctcp,tcp", "comma-separated protocols")
		flows     = flag.String("flows", "30,50,80", "comma-separated concurrent flow counts")
		rounds    = flag.Int("rounds", 50, "rounds per point")
		warmup    = flag.Int("warmup", 10, "initial rounds excluded from statistics")
		rtoMin    = flag.Duration("rtomin", 200*time.Millisecond, "minimum (and initial) RTO")
		seed      = flag.Uint64("seed", 1, "experiment seed")
		traceMode = flag.Bool("trace", false, "run the Fig. 14 convergence trace instead of the CDF")
		binMS     = flag.Int("bin", 50, "trace mode: bin width in ms for the printed series")
	)
	flag.Parse()

	if *traceMode {
		runTrace(*seed, *binMS)
		return
	}

	fmt.Println("Figure 9: bottleneck queue-length CDF (bytes; sampled every 100us)")
	fmt.Printf("%-14s %5s | %9s %9s %9s %9s %9s\n",
		"protocol", "N", "p25", "p50", "p90", "p99", "max")
	for _, name := range strings.Split(*protocols, ",") {
		p, err := dcp.ParseProtocol(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "queuestat:", err)
			os.Exit(2)
		}
		for _, f := range strings.Split(*flows, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "queuestat: bad flow count %q\n", f)
				os.Exit(2)
			}
			o := dcp.DefaultIncastOptions(p, n)
			o.Rounds = *rounds
			o.WarmupRounds = *warmup
			o.RTOMin = dcp.Duration(*rtoMin)
			o.Testbed.Seed = *seed
			o.QueueSampleEvery = 100 * dcp.Microsecond
			r := dcp.RunIncast(o)
			cdf := r.QueueCDF()
			fmt.Printf("%-14s %5d | %9.0f %9.0f %9.0f %9.0f %9.0f\n",
				p, n, cdf.Quantile(0.25), cdf.Quantile(0.5), cdf.Quantile(0.9),
				cdf.Quantile(0.99), cdf.Quantile(1))
		}
	}
}

// runTrace reproduces Figure 14: N=50 DCTCP+ flows, 4MB each, queue
// occupancy over the first rounds.
func runTrace(seed uint64, binMS int) {
	o := dcp.DefaultIncastOptions(dcp.ProtoDCTCPPlus, 50)
	o.BytesPerFlow = 4 << 20
	o.Rounds = 8
	o.WarmupRounds = 1
	o.Testbed.Seed = seed
	o.QueueSampleEvery = 100 * dcp.Microsecond
	r := dcp.RunIncast(o)

	fmt.Println("Figure 14: Switch-1 queue occupancy, 50 DCTCP+ flows x 4MB")
	fmt.Printf("(max occupancy per %dms bin; buffer limit 131072 bytes)\n", binMS)
	bin := dcp.Duration(binMS) * dcp.Millisecond
	cur, binIdx := 0, 0
	for _, s := range r.QueueSamples {
		idx := int(dcp.Duration(s.At) / bin)
		for idx > binIdx {
			printBin(binIdx, binMS, cur)
			binIdx++
			cur = 0
		}
		if s.Bytes > cur {
			cur = s.Bytes
		}
	}
	printBin(binIdx, binMS, cur)
	fmt.Printf("\nbottleneck drops: %d   timeouts: %d\n", r.BottleneckDrops, r.Timeouts)
}

func printBin(idx, binMS, maxBytes int) {
	const width = 60
	bar := maxBytes * width / (128 << 10)
	if bar > width {
		bar = width
	}
	fmt.Printf("t=%5dms %6dB |%s\n", idx*binMS, maxBytes, strings.Repeat("#", bar))
}
