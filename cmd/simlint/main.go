// Command simlint runs the repository's domain-specific static analysis
// over the module: determinism guards, sim-time discipline, unit safety
// (name-based and flow-sensitive), float-equality, telemetry nil-safety,
// sweep worker-race and cache-key checks, and the call-graph passes —
// hot-path allocation budgets, enum-switch exhaustiveness and whole-graph
// purity (see internal/lint).
//
//	simlint ./...            # lint the whole module (the make check gate)
//	simlint ./internal/tcp   # lint one package
//	simlint -json ./...      # machine-readable diagnostics, one JSON array
//	simlint -sarif ./...     # SARIF 2.1.0 log for CI code scanning
//	simlint -fix ./...       # apply suggested fixes, then re-lint
//	simlint -changed main    # report only packages that differ from a git ref
//	simlint -stale-allow     # also report //lint:allow directives that suppress nothing
//	simlint -list            # print the analyzer suite and exit
//	simlint -version         # print the sweep-cache code-version string
//
// -version prints the same string internal/sweep folds into its cache keys
// (git describe of the working tree), so "which build wrote this cache
// entry" is answerable with the lint binary already on the PATH.
//
// -changed narrows the report, not the analysis: the matched patterns are
// loaded and analyzed exactly once as usual (whole-module passes like the
// call graph need the full picture), and diagnostics are then kept only
// for packages containing a file that differs from the given ref —
// `git diff --name-only <ref>` plus untracked files. Outside a git work
// tree, or with an unresolvable ref, the run fails with status 2.
//
// -stale-allow turns the allowlist audit on: every well-formed
// //lint:allow directive that suppressed no diagnostic in the run is
// reported as a "staleallow" finding and counts toward the exit status,
// so justified exemptions are deleted when the code they excused goes
// away. make lint runs with this flag.
//
// -fix applies every suggested fix attached to a surviving diagnostic
// (simtime's int64→sim.Duration rewrite, floateq's epsilon comparison),
// writes the files, and re-runs the analysis from the rewritten sources;
// the exit status reflects the residual diagnostics, so a fully fixable
// tree converges to 0 in one invocation and -fix is idempotent. When fixes
// from two different analyzers rewrite overlapping byte ranges of one
// file, -fix refuses the whole file with a diagnostic naming both
// analyzers and writes nothing — each rewrite was computed against the
// original source, and composing them would produce code neither analyzer
// checked.
//
// Exit status is a contract, relied on by make check and CI:
//
//	0  every matched package type-checked and produced no diagnostics
//	1  the analysis ran and reported at least one diagnostic
//	2  the analysis could not run: unknown flag, conflicting flags,
//	   unresolvable pattern, or a package that fails to type-check
//
// Text mode prints file:line:col: analyzer: message per finding, with a
// trailing count on stderr. JSON and SARIF modes always print exactly one
// document on stdout (an empty result set when clean), so a consumer may
// parse unconditionally; load errors go to stderr and are signalled only
// by status 2.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"sort"
	"strings"

	"dctcpplus/internal/lint"
	"dctcpplus/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a testable seam: parse args, load, lint,
// report, and return the exit status per the contract above.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
		sarifOut = fs.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log on stdout")
		fix      = fs.Bool("fix", false, "apply suggested fixes, then re-run the analysis")
		list     = fs.Bool("list", false, "list the analyzer suite and exit")
		version  = fs.Bool("version", false, "print the sweep-cache code-version string and exit")
		stale    = fs.Bool("stale-allow", false, "also report //lint:allow directives that no longer suppress any diagnostic")
		changed  = fs.String("changed", "", "report only packages containing files that differ from this git ref")
		dir      = fs.String("C", "", "change to this directory before resolving patterns")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "simlint: -json and -sarif are mutually exclusive")
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *version {
		fmt.Fprintln(stdout, sweep.CodeVersion())
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root := *dir
	if root == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
		root = cwd
	}

	diags, moduleRoot, status := analyze(root, patterns, analyzers, *stale, stderr)
	if status != 0 {
		return status
	}

	// With -changed, the git question is answered once; the same directory
	// set filters the post-fix re-analysis below too.
	var keep map[string]bool
	if *changed != "" {
		var err error
		keep, err = changedDirs(moduleRoot, *changed)
		if err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
		diags = filterToDirs(diags, moduleRoot, keep)
	}

	if *fix {
		n, err := applyAndWrite(diags, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
		if n > 0 {
			// Re-analyze from the rewritten sources so the report and the
			// exit status describe the tree as it now stands.
			diags, moduleRoot, status = analyze(root, patterns, analyzers, *stale, stderr)
			if status != 0 {
				return status
			}
			if keep != nil {
				diags = filterToDirs(diags, moduleRoot, keep)
			}
		}
	}

	// Report paths relative to the module root: stable across machines,
	// clickable from the repository checkout.
	for i := range diags {
		if rel, err := filepath.Rel(moduleRoot, diags[i].File); err == nil {
			diags[i].File = rel
		}
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
	case *sarifOut:
		doc, err := lint.SARIF(diags, analyzers)
		if err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(doc))
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "simlint: %d diagnostic(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// analyze loads the patterns with a fresh loader and runs the suite,
// returning the diagnostics (with absolute paths), the module root, and a
// non-zero exit status on load failure.
func analyze(root string, patterns []string, analyzers []*lint.Analyzer, stale bool, stderr io.Writer) ([]lint.Diagnostic, string, int) {
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return nil, "", 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return nil, "", 2
	}
	run := lint.Run
	if stale {
		run = lint.RunStale
	}
	return run(pkgs, analyzers), loader.ModuleRoot(), 0
}

// changedDirs asks git which module-relative directories contain files
// that differ from ref — committed edits via diff, plus files git does
// not track yet (a brand-new package differs from every ref). Directories
// are slash-separated, matching what filterToDirs derives from paths.
func changedDirs(root, ref string) (map[string]bool, error) {
	diff, err := gitLines(root, "diff", "--name-only", ref, "--", ".")
	if err != nil {
		return nil, err
	}
	untracked, err := gitLines(root, "ls-files", "--others", "--exclude-standard")
	if err != nil {
		return nil, err
	}
	dirs := make(map[string]bool)
	for _, f := range append(diff, untracked...) {
		dirs[path.Dir(f)] = true
	}
	return dirs, nil
}

// gitLines runs one git subcommand under root and returns its non-empty
// output lines, surfacing git's own stderr (unknown ref, not a work tree)
// as the error text.
func gitLines(root string, args ...string) ([]string, error) {
	cmd := exec.Command("git", append([]string{"-C", root}, args...)...)
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("git %s: %s", args[0], strings.TrimSpace(string(ee.Stderr)))
		}
		return nil, fmt.Errorf("git %s: %v", args[0], err)
	}
	var lines []string
	for _, l := range strings.Split(string(out), "\n") {
		if l = strings.TrimSpace(l); l != "" {
			lines = append(lines, l)
		}
	}
	return lines, nil
}

// filterToDirs keeps only diagnostics whose file lives in one of the kept
// module-relative directories. Paths are still absolute at this point —
// the module-relative rewrite for display happens after filtering.
func filterToDirs(diags []lint.Diagnostic, root string, keep map[string]bool) []lint.Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.File)
		if err != nil {
			out = append(out, d)
			continue
		}
		if keep[path.Dir(filepath.ToSlash(rel))] {
			out = append(out, d)
		}
	}
	return out
}

// applyAndWrite applies the fixes attached to diags and writes the
// rewritten files, reporting how many files changed.
func applyAndWrite(diags []lint.Diagnostic, stderr io.Writer) (int, error) {
	fixed, err := lint.ApplyFixes(diags)
	if err != nil {
		return 0, err
	}
	nFixes := 0
	for _, d := range diags {
		if d.Fix != nil {
			nFixes++
		}
	}
	files := make([]string, 0, len(fixed))
	for file := range fixed {
		files = append(files, file)
	}
	sort.Strings(files) // write in deterministic order
	for _, file := range files {
		if err := os.WriteFile(file, fixed[file], 0o644); err != nil {
			return 0, err
		}
	}
	if len(fixed) > 0 {
		fmt.Fprintf(stderr, "simlint: applied %d fix(es) to %d file(s)\n", nFixes, len(fixed))
	}
	return len(fixed), nil
}
