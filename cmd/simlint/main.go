// Command simlint runs the repository's domain-specific static analysis
// over the module: determinism guards, sim-time discipline, unit safety,
// float-equality and telemetry nil-safety (see internal/lint).
//
//	simlint ./...            # lint the whole module (the make check gate)
//	simlint ./internal/tcp   # lint one package
//	simlint -json ./...      # machine-readable diagnostics, one JSON array
//	simlint -list            # print the analyzer suite and exit
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on a
// load/usage error. Diagnostics print as file:line:col: analyzer: message.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dctcpplus/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
		list    = flag.Bool("list", false, "list the analyzer suite and exit")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	diags := lint.Run(pkgs, analyzers)

	// Report paths relative to the module root: stable across machines,
	// clickable from the repository checkout.
	for i := range diags {
		if rel, err := filepath.Rel(loader.ModuleRoot(), diags[i].File); err == nil {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "simlint: %d diagnostic(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simlint:", err)
	os.Exit(2)
}
