// Command simlint runs the repository's domain-specific static analysis
// over the module: determinism guards, sim-time discipline, unit safety,
// float-equality, telemetry nil-safety, and the call-graph passes —
// hot-path allocation budgets, enum-switch exhaustiveness and whole-graph
// purity (see internal/lint).
//
//	simlint ./...            # lint the whole module (the make check gate)
//	simlint ./internal/tcp   # lint one package
//	simlint -json ./...      # machine-readable diagnostics, one JSON array
//	simlint -list            # print the analyzer suite and exit
//
// Exit status is a contract, relied on by make check and CI:
//
//	0  every matched package type-checked and produced no diagnostics
//	1  the analysis ran and reported at least one diagnostic
//	2  the analysis could not run: unknown flag, unresolvable pattern,
//	   or a package that fails to type-check
//
// Text mode prints file:line:col: analyzer: message per finding, with a
// trailing count on stderr. JSON mode always prints exactly one array on
// stdout ([] when clean), so a consumer may parse unconditionally; load
// errors go to stderr and are signalled only by status 2.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dctcpplus/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a testable seam: parse args, load, lint,
// report, and return the exit status per the contract above.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
		list    = fs.Bool("list", false, "list the analyzer suite and exit")
		dir     = fs.String("C", "", "change to this directory before resolving patterns")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root := *dir
	if root == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
		root = cwd
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)

	// Report paths relative to the module root: stable across machines,
	// clickable from the repository checkout.
	for i := range diags {
		if rel, err := filepath.Rel(loader.ModuleRoot(), diags[i].File); err == nil {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "simlint: %d diagnostic(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
