package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"dctcpplus/internal/lint"
)

// moduleRoot walks up from the test's working directory (cmd/simlint) to
// the repository root so the table below can address fixture packages.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestRunExitContract pins the documented 0/1/2 exit statuses and the shape
// of both output modes against real fixture packages.
func TestRunExitContract(t *testing.T) {
	root := moduleRoot(t)
	cases := []struct {
		name       string
		args       []string
		wantStatus int
		wantOut    string // substring of stdout, "" to skip
		wantErr    string // substring of stderr, "" to skip
	}{
		{
			name:       "clean package exits 0",
			args:       []string{"-C", root, "./internal/check"},
			wantStatus: 0,
		},
		{
			name:       "violating fixture exits 1 in text mode",
			args:       []string{"-C", root, "internal/lint/testdata/src/exhaustive"},
			wantStatus: 1,
			wantOut:    "exhaustive: switch over Phase misses",
			wantErr:    "diagnostic(s)",
		},
		{
			name:       "type error exits 2",
			args:       []string{"-C", root, "internal/lint/testdata/broken"},
			wantStatus: 2,
			wantErr:    "broken.go",
		},
		{
			name:       "unknown flag exits 2",
			args:       []string{"-no-such-flag"},
			wantStatus: 2,
			wantErr:    "flag provided but not defined",
		},
		{
			name:       "unresolvable pattern exits 2",
			args:       []string{"-C", root, "internal/lint/no/such/dir"},
			wantStatus: 2,
			wantErr:    "simlint:",
		},
		{
			name:       "list exits 0 and names the call-graph analyzers",
			args:       []string{"-list"},
			wantStatus: 0,
			wantOut:    "hotalloc",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb strings.Builder
			status := run(c.args, &out, &errb)
			if status != c.wantStatus {
				t.Fatalf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
					c.args, status, c.wantStatus, out.String(), errb.String())
			}
			if c.wantOut != "" && !strings.Contains(out.String(), c.wantOut) {
				t.Errorf("stdout missing %q:\n%s", c.wantOut, out.String())
			}
			if c.wantErr != "" && !strings.Contains(errb.String(), c.wantErr) {
				t.Errorf("stderr missing %q:\n%s", c.wantErr, errb.String())
			}
		})
	}
}

// TestRunJSONMode checks both halves of the JSON contract: a clean run
// prints exactly the empty array, and a dirty run prints a parseable array
// of diagnostics with module-relative paths — while still exiting 1.
func TestRunJSONMode(t *testing.T) {
	root := moduleRoot(t)

	var out, errb strings.Builder
	if status := run([]string{"-C", root, "-json", "./internal/check"}, &out, &errb); status != 0 {
		t.Fatalf("clean JSON run exited %d; stderr: %s", status, errb.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("clean output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Fatalf("clean run produced %d diagnostics: %+v", len(diags), diags)
	}

	out.Reset()
	errb.Reset()
	if status := run([]string{"-C", root, "-json", "internal/lint/testdata/src/exhaustive"}, &out, &errb); status != 1 {
		t.Fatalf("dirty JSON run exited %d, want 1; stderr: %s", status, errb.String())
	}
	diags = nil
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("dirty output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) != 2 {
		t.Fatalf("dirty run produced %d diagnostics, want 2: %+v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "exhaustive" {
			t.Errorf("unexpected analyzer %q in %+v", d.Analyzer, d)
		}
		if filepath.IsAbs(d.File) {
			t.Errorf("path %q is absolute, want module-relative", d.File)
		}
		if d.Line == 0 || d.Col == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}
