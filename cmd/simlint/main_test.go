package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"dctcpplus/internal/lint"
	"dctcpplus/internal/sweep"
)

// moduleRoot walks up from the test's working directory (cmd/simlint) to
// the repository root so the table below can address fixture packages.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestRunExitContract pins the documented 0/1/2 exit statuses and the shape
// of both output modes against real fixture packages.
func TestRunExitContract(t *testing.T) {
	root := moduleRoot(t)
	cases := []struct {
		name       string
		args       []string
		wantStatus int
		wantOut    string // substring of stdout, "" to skip
		wantErr    string // substring of stderr, "" to skip
	}{
		{
			name:       "clean package exits 0",
			args:       []string{"-C", root, "./internal/check"},
			wantStatus: 0,
		},
		{
			name:       "violating fixture exits 1 in text mode",
			args:       []string{"-C", root, "internal/lint/testdata/src/exhaustive"},
			wantStatus: 1,
			wantOut:    "exhaustive: switch over Phase misses",
			wantErr:    "diagnostic(s)",
		},
		{
			name:       "type error exits 2",
			args:       []string{"-C", root, "internal/lint/testdata/broken"},
			wantStatus: 2,
			wantErr:    "broken.go",
		},
		{
			name:       "unknown flag exits 2",
			args:       []string{"-no-such-flag"},
			wantStatus: 2,
			wantErr:    "flag provided but not defined",
		},
		{
			name:       "unresolvable pattern exits 2",
			args:       []string{"-C", root, "internal/lint/no/such/dir"},
			wantStatus: 2,
			wantErr:    "simlint:",
		},
		{
			name:       "list exits 0 and names the call-graph analyzers",
			args:       []string{"-list"},
			wantStatus: 0,
			wantOut:    "hotalloc",
		},
		{
			name:       "stale directive is ignored by the default run",
			args:       []string{"-C", root, "internal/lint/testdata/src/staleallow"},
			wantStatus: 0,
		},
		{
			name:       "-stale-allow reports the rotted directive and exits 1",
			args:       []string{"-stale-allow", "-C", root, "internal/lint/testdata/src/staleallow"},
			wantStatus: 1,
			wantOut:    "staleallow: stale //lint:allow floateq directive",
			wantErr:    "diagnostic(s)",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb strings.Builder
			status := run(c.args, &out, &errb)
			if status != c.wantStatus {
				t.Fatalf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
					c.args, status, c.wantStatus, out.String(), errb.String())
			}
			if c.wantOut != "" && !strings.Contains(out.String(), c.wantOut) {
				t.Errorf("stdout missing %q:\n%s", c.wantOut, out.String())
			}
			if c.wantErr != "" && !strings.Contains(errb.String(), c.wantErr) {
				t.Errorf("stderr missing %q:\n%s", c.wantErr, errb.String())
			}
		})
	}
}

// TestRunJSONMode checks both halves of the JSON contract: a clean run
// prints exactly the empty array, and a dirty run prints a parseable array
// of diagnostics with module-relative paths — while still exiting 1.
func TestRunJSONMode(t *testing.T) {
	root := moduleRoot(t)

	var out, errb strings.Builder
	if status := run([]string{"-C", root, "-json", "./internal/check"}, &out, &errb); status != 0 {
		t.Fatalf("clean JSON run exited %d; stderr: %s", status, errb.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("clean output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Fatalf("clean run produced %d diagnostics: %+v", len(diags), diags)
	}

	out.Reset()
	errb.Reset()
	if status := run([]string{"-C", root, "-json", "internal/lint/testdata/src/exhaustive"}, &out, &errb); status != 1 {
		t.Fatalf("dirty JSON run exited %d, want 1; stderr: %s", status, errb.String())
	}
	diags = nil
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("dirty output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) != 2 {
		t.Fatalf("dirty run produced %d diagnostics, want 2: %+v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "exhaustive" {
			t.Errorf("unexpected analyzer %q in %+v", d.Analyzer, d)
		}
		if filepath.IsAbs(d.File) {
			t.Errorf("path %q is absolute, want module-relative", d.File)
		}
		if d.Line == 0 || d.Col == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

// TestRunVersion pins the -version contract as a table: the flag prints
// exactly the string internal/sweep folds into cache keys and exits 0,
// with or without trailing patterns, and composes with nothing else.
func TestRunVersion(t *testing.T) {
	want := sweep.CodeVersion() + "\n"
	cases := []struct {
		name string
		args []string
	}{
		{"bare", []string{"-version"}},
		{"with patterns", []string{"-version", "./..."}},
		{"with -C", []string{"-C", moduleRoot(t), "-version"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb strings.Builder
			if status := run(c.args, &out, &errb); status != 0 {
				t.Fatalf("run(%v) = %d, want 0; stderr: %s", c.args, status, errb.String())
			}
			if out.String() != want {
				t.Errorf("run(%v) printed %q, want %q", c.args, out.String(), want)
			}
		})
	}
}

// TestRunSARIFMode checks the -sarif output parses as a SARIF log in both
// clean and dirty runs, and that -json and -sarif are mutually exclusive.
func TestRunSARIFMode(t *testing.T) {
	root := moduleRoot(t)

	var out, errb strings.Builder
	if status := run([]string{"-C", root, "-sarif", "./internal/check"}, &out, &errb); status != 0 {
		t.Fatalf("clean SARIF run exited %d; stderr: %s", status, errb.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("clean output is not SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape: version %q, %d runs", log.Version, len(log.Runs))
	}
	if len(log.Runs[0].Results) != 0 {
		t.Fatalf("clean run carries %d results", len(log.Runs[0].Results))
	}

	out.Reset()
	errb.Reset()
	if status := run([]string{"-C", root, "-sarif", "internal/lint/testdata/src/exhaustive"}, &out, &errb); status != 1 {
		t.Fatalf("dirty SARIF run exited %d, want 1; stderr: %s", status, errb.String())
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("dirty output is not SARIF JSON: %v", err)
	}
	if len(log.Runs[0].Results) != 2 {
		t.Fatalf("dirty run carries %d results, want 2", len(log.Runs[0].Results))
	}

	out.Reset()
	errb.Reset()
	if status := run([]string{"-json", "-sarif", "./internal/check"}, &out, &errb); status != 2 {
		t.Fatalf("-json -sarif exited %d, want 2", status)
	}
	if !strings.Contains(errb.String(), "mutually exclusive") {
		t.Errorf("stderr missing exclusivity message: %s", errb.String())
	}
}

// TestRunFix drives the end-to-end -fix path on a scratch copy of the
// floatcmpfix fixture: the first run rewrites the file to the golden bytes
// and exits 0 (the tree converges in one invocation); the second run is a
// no-op.
func TestRunFix(t *testing.T) {
	root := moduleRoot(t)
	fixDir := filepath.Join(root, "internal", "lint", "testdata", "fix", "floatcmpfix")
	input, err := os.ReadFile(filepath.Join(fixDir, "input.go"))
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join(fixDir, "input.go.golden"))
	if err != nil {
		t.Fatal(err)
	}

	tmp := filepath.Join(fixDir, "clitmp")
	if err := os.RemoveAll(tmp); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(tmp) })
	target := filepath.Join(tmp, "input.go")
	if err := os.WriteFile(target, input, 0o644); err != nil {
		t.Fatal(err)
	}
	pattern := "internal/lint/testdata/fix/floatcmpfix/clitmp"

	var out, errb strings.Builder
	if status := run([]string{"-C", root, "-fix", pattern}, &out, &errb); status != 0 {
		t.Fatalf("-fix run exited %d, want 0\nstdout: %s\nstderr: %s", status, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "applied") {
		t.Errorf("stderr missing fix summary: %s", errb.String())
	}
	got, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(golden) {
		t.Errorf("fixed file differs from golden\n--- got ---\n%s--- want ---\n%s", got, golden)
	}

	out.Reset()
	errb.Reset()
	if status := run([]string{"-C", root, "-fix", pattern}, &out, &errb); status != 0 {
		t.Fatalf("second -fix run exited %d, want 0; stderr: %s", status, errb.String())
	}
	if strings.Contains(errb.String(), "applied") {
		t.Errorf("second -fix run applied fixes again: %s", errb.String())
	}
}

// initChangedRepo builds a throwaway module under its own git repo: package
// a is clean, package b carries a floateq violation, both committed. The
// -changed tests then edit files and watch which packages get reported.
func initChangedRepo(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not on PATH")
	}
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.21\n",
		"a/a.go": "package a\n\n// Sum adds.\nfunc Sum(x, y int) int { return x + y }\n",
		"b/b.go": "package b\n\n// Eq compares floats exactly (a floateq violation).\nfunc Eq(x, y float64) bool { return x == y }\n",
	}
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, args := range [][]string{
		{"init", "-q"},
		{"config", "user.email", "t@example.invalid"},
		{"config", "user.name", "t"},
		{"add", "."},
		{"commit", "-q", "-m", "seed"},
	} {
		cmd := exec.Command("git", append([]string{"-C", dir}, args...)...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	return dir
}

// TestRunChangedMode pins the -changed contract: only packages containing
// files that differ from the ref are reported, untracked files count as
// changed, and git failures surface as status 2.
func TestRunChangedMode(t *testing.T) {
	cases := []struct {
		name       string
		mutate     func(t *testing.T, dir string)
		args       []string
		wantStatus int
		wantOut    string // substring of stdout, "" to skip
		wantErr    string // substring of stderr, "" to skip
	}{
		{
			name:       "clean tree reports nothing despite the committed violation",
			mutate:     func(t *testing.T, dir string) {},
			args:       []string{"-changed", "HEAD", "./..."},
			wantStatus: 0,
		},
		{
			name: "editing the clean package stays clean",
			mutate: func(t *testing.T, dir string) {
				appendFile(t, filepath.Join(dir, "a", "a.go"), "\n// Doc edits change the file, not the findings.\n")
			},
			args:       []string{"-changed", "HEAD", "./..."},
			wantStatus: 0,
		},
		{
			name: "editing the dirty package surfaces its findings",
			mutate: func(t *testing.T, dir string) {
				appendFile(t, filepath.Join(dir, "b", "b.go"), "\n// Doc edit to mark package b as changed.\n")
			},
			args:       []string{"-changed", "HEAD", "./..."},
			wantStatus: 1,
			wantOut:    "floateq",
		},
		{
			name: "untracked package counts as changed",
			mutate: func(t *testing.T, dir string) {
				p := filepath.Join(dir, "c", "c.go")
				if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
					t.Fatal(err)
				}
				src := "package c\n\n// Same compares floats exactly.\nfunc Same(x, y float64) bool { return x == y }\n"
				if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			args:       []string{"-changed", "HEAD", "./..."},
			wantStatus: 1,
			wantOut:    "c.go",
		},
		{
			name:       "unresolvable ref exits 2",
			mutate:     func(t *testing.T, dir string) {},
			args:       []string{"-changed", "no-such-ref", "./..."},
			wantStatus: 2,
			wantErr:    "git diff",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := initChangedRepo(t)
			c.mutate(t, dir)
			var out, errb strings.Builder
			status := run(append([]string{"-C", dir}, c.args...), &out, &errb)
			if status != c.wantStatus {
				t.Fatalf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
					c.args, status, c.wantStatus, out.String(), errb.String())
			}
			if c.wantOut != "" && !strings.Contains(out.String(), c.wantOut) {
				t.Errorf("stdout missing %q:\n%s", c.wantOut, out.String())
			}
			if c.wantErr != "" && !strings.Contains(errb.String(), c.wantErr) {
				t.Errorf("stderr missing %q:\n%s", c.wantErr, errb.String())
			}
		})
	}
}

// TestRunChangedOutsideGit pins status 2 when the module is not a git work
// tree at all.
func TestRunChangedOutsideGit(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not on PATH")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpmod\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := filepath.Join(dir, "a")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package a\n\n// Sum adds.\nfunc Sum(x, y int) int { return x + y }\n"
	if err := os.WriteFile(filepath.Join(pkg, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if status := run([]string{"-C", dir, "-changed", "HEAD", "./..."}, &out, &errb); status != 2 {
		t.Fatalf("run outside git = %d, want 2\nstderr: %s", status, errb.String())
	}
	if !strings.Contains(errb.String(), "git") {
		t.Errorf("stderr missing a git error: %s", errb.String())
	}
}

// appendFile appends src to an existing file.
func appendFile(t *testing.T, path, src string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(src); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
