// Command cwndstat reproduces the paper's sender-side tracing analysis:
// the cwnd frequency distributions of Figure 2 and the Table I percentages
// (floor/ECE coincidence, timeout probability, FLoss-TO vs LAck-TO split).
//
// Example:
//
//	cwndstat -protocols dctcp,tcp -flows 10,20,40,60 -rounds 200
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	dcp "dctcpplus"
)

func main() {
	var (
		protocols = flag.String("protocols", "dctcp,tcp", "comma-separated protocols")
		flows     = flag.String("flows", "10,20,40,60", "comma-separated concurrent flow counts")
		rounds    = flag.Int("rounds", 100, "rounds per point (paper: 1000)")
		warmup    = flag.Int("warmup", 10, "initial rounds excluded from statistics")
		rtoMin    = flag.Duration("rtomin", 200*time.Millisecond, "minimum (and initial) RTO")
		seed      = flag.Uint64("seed", 1, "experiment seed")
	)
	flag.Parse()

	type point struct {
		p dcp.Protocol
		n int
		r dcp.IncastResult
	}
	var points []point
	for _, name := range strings.Split(*protocols, ",") {
		p, err := dcp.ParseProtocol(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cwndstat:", err)
			os.Exit(2)
		}
		for _, f := range strings.Split(*flows, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "cwndstat: bad flow count %q\n", f)
				os.Exit(2)
			}
			o := dcp.DefaultIncastOptions(p, n)
			o.Rounds = *rounds
			o.WarmupRounds = *warmup
			o.RTOMin = dcp.Duration(*rtoMin)
			o.Testbed.Seed = *seed
			o.CollectCwnd = true
			points = append(points, point{p, n, dcp.RunIncast(o)})
		}
	}

	fmt.Println("Figure 2: cwnd frequency distribution (fraction of ACK events per window size)")
	fmt.Printf("%-12s %5s |", "protocol", "N")
	for w := 1; w <= 10; w++ {
		fmt.Printf(" w=%-4d", w)
	}
	fmt.Printf(" %s\n", "w>10")
	for _, pt := range points {
		h := pt.r.CwndHist
		fmt.Printf("%-12s %5d |", pt.p, pt.n)
		var gt float64
		for _, b := range h.Bins() {
			if b > 10 {
				gt += h.Frac(b)
			}
		}
		for w := 1; w <= 10; w++ {
			fmt.Printf(" %5.3f", h.Frac(w))
		}
		fmt.Printf(" %5.3f\n", gt)
	}

	fmt.Println()
	fmt.Println("Table I: floor/ECE coincidence and timeout taxonomy (per flow-round)")
	fmt.Printf("%-12s %5s %14s %10s %10s %10s\n",
		"protocol", "N", "cwndMin&ECE", "timeout", "FLoss-TO", "LAck-TO")
	for _, pt := range points {
		tot := pt.r.FLossTO + pt.r.LAckTO
		fl, la := 0.0, 0.0
		if tot > 0 {
			fl = 100 * float64(pt.r.FLossTO) / float64(tot)
			la = 100 * float64(pt.r.LAckTO) / float64(tot)
		}
		fmt.Printf("%-12s %5d %13.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
			pt.p, pt.n, 100*pt.r.MinCwndECEFrac, 100*pt.r.TimeoutRoundFrac, fl, la)
	}
}
