package main

import (
	"testing"
	"time"

	dcp "dctcpplus"
)

func TestValidateSweepFlags(t *testing.T) {
	parent := t.TempDir()
	cases := []struct {
		name     string
		jobs     int
		cacheDir string
		resume   bool
		wantErr  bool
	}{
		{"defaults, no cache", 4, "", false, false},
		{"single worker", 1, "", false, false},
		{"cache under existing parent", 2, parent + "/cache", false, false},
		{"resume with cache", 2, parent + "/cache", true, false},
		{"zero jobs", 0, "", false, true},
		{"negative jobs", -3, "", false, true},
		{"nonexistent cache parent", 2, parent + "/no/such/cache", false, true},
		{"resume without cache", 2, "", true, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateSweepFlags(c.jobs, c.cacheDir, c.resume)
			if (err != nil) != c.wantErr {
				t.Errorf("validateSweepFlags(%d, %q, %v) = %v, wantErr=%v",
					c.jobs, c.cacheDir, c.resume, err, c.wantErr)
			}
		})
	}
}

func TestValidateOracleFlags(t *testing.T) {
	parent := t.TempDir()
	cases := []struct {
		name    string
		oracle  bool
		trace   string
		wantErr bool
	}{
		{"both off", false, "", false},
		{"oracle without trace", true, "", false},
		{"oracle with trace", true, parent + "/viol.txt", false},
		{"trace without oracle", false, parent + "/viol.txt", true},
		{"nonexistent trace parent", true, parent + "/no/such/viol.txt", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateOracleFlags(c.oracle, c.trace)
			if (err != nil) != c.wantErr {
				t.Errorf("validateOracleFlags(%v, %q) = %v, wantErr=%v",
					c.oracle, c.trace, err, c.wantErr)
			}
		})
	}
}

func TestBuildSpec(t *testing.T) {
	spec, err := buildSpec("t", "dctcp+,dctcp", "40,80", "200ms,10ms", "1,2,3",
		"default,hull", "none;all;loss,delay", 7, 50, 10, 1<<20, 0, 4*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Protocols) != 2 || len(spec.Flows) != 2 || len(spec.RTOMins) != 2 ||
		len(spec.Seeds) != 3 || len(spec.Topos) != 2 || len(spec.Faults) != 3 {
		t.Fatalf("spec dimensions wrong: %+v", spec)
	}
	if spec.Faults[0] != "" || spec.Faults[1] != "all" || spec.Faults[2] != "loss,delay" {
		t.Fatalf("fault plans wrong: %v", spec.Faults)
	}
	if spec.RTOMins[1] != 10*dcp.Millisecond {
		t.Fatalf("rtomin parse wrong: %v", spec.RTOMins)
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("built spec does not validate: %v", err)
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2*2*2*3*2*3 {
		t.Fatalf("expanded %d jobs, want 144", len(jobs))
	}

	bad := []struct{ flows, rtomin, seeds string }{
		{"40,zero", "200ms", "1"},
		{"40", "200", "1"}, // missing unit
		{"40", "-5ms", "1"},
		{"40", "200ms", "minus-one"},
	}
	for _, b := range bad {
		if _, err := buildSpec("t", "dctcp", b.flows, b.rtomin, b.seeds,
			"default", "none", 1, 50, 10, 1<<20, 0, time.Millisecond); err == nil {
			t.Errorf("buildSpec accepted flows=%q rtomin=%q seeds=%q", b.flows, b.rtomin, b.seeds)
		}
	}
}
