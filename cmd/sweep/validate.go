package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	dcp "dctcpplus"
)

// validateSweepFlags rejects orchestration settings the runner cannot
// honor: a worker pool needs at least one worker, a cache needs a creatable
// directory (its parent must exist — a typo'd path should fail loudly, not
// mint a directory tree), and resume is meaningless without a cache.
func validateSweepFlags(jobs int, cacheDir string, resume bool) error {
	switch {
	case jobs < 1:
		return fmt.Errorf("-jobs %d: need at least one worker", jobs)
	case resume && cacheDir == "":
		return fmt.Errorf("-resume: requires -cache-dir (resume replays the cache)")
	}
	if cacheDir != "" {
		parent := filepath.Dir(filepath.Clean(cacheDir))
		if fi, err := os.Stat(parent); err != nil || !fi.IsDir() {
			return fmt.Errorf("-cache-dir %s: parent directory %s does not exist", cacheDir, parent)
		}
	}
	return nil
}

// validateOracleFlags ties the trace output to the checker: an -oracle-trace
// without -oracle would silently never be written, and (like -cache-dir) a
// typo'd trace path should fail at the flag boundary, not after the sweep.
func validateOracleFlags(oracle bool, trace string) error {
	if trace == "" {
		return nil
	}
	if !oracle {
		return fmt.Errorf("-oracle-trace: requires -oracle (the trace renders oracle violations)")
	}
	parent := filepath.Dir(filepath.Clean(trace))
	if fi, err := os.Stat(parent); err != nil || !fi.IsDir() {
		return fmt.Errorf("-oracle-trace %s: parent directory %s does not exist", trace, parent)
	}
	return nil
}

// buildSpec assembles the declarative grid from the flag surface. The
// Spec's own Validate (run by the runner) is the semantic gate; this layer
// only parses.
func buildSpec(name, protocols, flows, rtomin, seeds, topos, faults string,
	faultSeed uint64, rounds, warmup int, total, per int64, jitter time.Duration) (dcp.SweepSpec, error) {
	flowCounts, err := parsePositiveInts(flows)
	if err != nil {
		return dcp.SweepSpec{}, err
	}
	rtoMins, err := parseDurations(rtomin)
	if err != nil {
		return dcp.SweepSpec{}, err
	}
	seedList, err := parseUints(seeds)
	if err != nil {
		return dcp.SweepSpec{}, err
	}
	return dcp.SweepSpec{
		Name:         name,
		Protocols:    splitCSV(protocols),
		Flows:        flowCounts,
		RTOMins:      rtoMins,
		Seeds:        seedList,
		Topos:        splitCSV(topos),
		Faults:       parseFaultPlans(faults),
		FaultSeed:    faultSeed,
		Rounds:       rounds,
		WarmupRounds: warmup,
		TotalBytes:   total,
		BytesPerFlow: per,
		Jitter:       dcp.Duration(jitter),
	}, nil
}

func splitCSV(csv string) []string {
	var out []string
	for _, f := range strings.Split(csv, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// parseFaultPlans splits the semicolon-separated plan list, mapping the
// explicit "none" spelling to the empty (clean) plan.
func parseFaultPlans(spec string) []string {
	var out []string
	for _, plan := range strings.Split(spec, ";") {
		plan = strings.TrimSpace(plan)
		if plan == "none" {
			plan = ""
		}
		out = append(out, plan)
	}
	return out
}

func parsePositiveInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad flow count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseUints(csv string) ([]uint64, error) {
	var out []uint64
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseDurations(csv string) ([]dcp.Duration, error) {
	var out []dcp.Duration
	for _, f := range strings.Split(csv, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(f))
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad duration %q", f)
		}
		out = append(out, dcp.Duration(d))
	}
	return out, nil
}
