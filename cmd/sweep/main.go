// Command sweep runs a declarative experiment grid — protocol × flows ×
// RTOmin × seed × fault plan × topology — over a bounded worker pool, with
// content-addressed result caching and cross-seed streaming aggregation.
// Completed jobs are memoized under -cache-dir, so re-running an identical
// sweep is pure cache replay, and an interrupted sweep picks up where it
// stopped with -resume.
//
// Examples:
//
//	sweep -protocols dctcp+,dctcp -flows 40,80,160 -seeds 1,2,3
//	sweep -preset large-n -cache-dir .sweepcache      # N=100..2000 scenario
//	sweep -preset large-n -cache-dir .sweepcache -resume   # continue/replay
//	sweep -protocols dctcp+ -flows 150 -faults "none;all" -seeds 1,2,3,4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	dcp "dctcpplus"
)

func main() {
	var (
		name      = flag.String("name", "sweep", "sweep name (manifest identity inside the cache)")
		protocols = flag.String("protocols", "dctcp+,dctcp",
			"comma-separated protocols (tcp, dctcp, dctcp-min1, dctcp+, dctcp+partial, reno+, d2tcp, d2tcp+)")
		flows  = flag.String("flows", "40,80,160", "comma-separated concurrent flow counts")
		rtomin = flag.String("rtomin", "200ms", "comma-separated minimum-RTO values")
		seeds  = flag.String("seeds", "1", "comma-separated experiment seeds")
		topos  = flag.String("topos", "default", "comma-separated topologies (default, hull)")
		faults = flag.String("faults", "none",
			"semicolon-separated fault plans; each is \"none\", \"all\", or a comma list of classes (blackout,loss,rate,delay,buffer,stall)")
		faultSeed = flag.Uint64("faultseed", 1, "seed of the fault-plan generator")
		rounds    = flag.Int("rounds", 50, "request/response rounds per point")
		warmup    = flag.Int("warmup", 10, "initial rounds excluded from statistics")
		total     = flag.Int64("total", 1<<20, "total bytes per round, split across flows")
		per       = flag.Int64("perflow", 0, "bytes per flow per round (overrides -total split)")
		jitter    = flag.Duration("jitter", 4*time.Millisecond, "worker service jitter")
		preset    = flag.String("preset", "", "named scenario replacing the grid flags (large-n)")

		jobs     = flag.Int("jobs", dcp.DefaultSweepWorkers(), "concurrent sweep jobs (workers)")
		cacheDir = flag.String("cache-dir", "", "content-addressed result cache directory (empty disables caching)")
		resume   = flag.Bool("resume", false, "continue a sweep whose manifest already exists in -cache-dir")
		telOut   = flag.String("telemetry", "", "write the sweep's instrument dump to this file as JSON lines")
		quiet    = flag.Bool("q", false, "suppress progress lines")
		oracle   = flag.Bool("oracle", false,
			"run every job under the trace-conformance oracle; any violation fails the command")
		oracleTrace = flag.String("oracle-trace", "",
			"write rendered oracle violations (with minimized event windows) to this file; requires -oracle, written only on violation")
	)
	flag.Parse()

	if err := validateSweepFlags(*jobs, *cacheDir, *resume); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	if err := validateOracleFlags(*oracle, *oracleTrace); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	var spec dcp.SweepSpec
	switch *preset {
	case "":
		var err error
		spec, err = buildSpec(*name, *protocols, *flows, *rtomin, *seeds, *topos, *faults,
			*faultSeed, *rounds, *warmup, *total, *per, *jitter)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(2)
		}
	case "large-n":
		spec = dcp.LargeNSweepSpec()
	default:
		fmt.Fprintf(os.Stderr, "sweep: -preset %s: unknown preset (want large-n)\n", *preset)
		os.Exit(2)
	}
	spec.Oracle = *oracle

	runner := dcp.SweepRunner{
		Workers:   *jobs,
		Resume:    *resume,
		Telemetry: dcp.NewRegistry(),
	}
	if !*quiet {
		runner.Progress = os.Stderr
	}
	if *cacheDir != "" {
		cache, err := dcp.OpenSweepCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		runner.Cache = cache
	}

	out, err := runner.Run(context.Background(), spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	if err := dcp.WriteSweepGroups(os.Stdout, out.Groups); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d jobs: %d run, %d cached (hit rate %.0f%%)",
		out.Jobs, out.Misses, out.Hits, hitRate(out)*100)
	if out.CacheErrs > 0 {
		fmt.Printf(", %d cache errors", out.CacheErrs)
	}
	fmt.Println()
	printJobTimings(out)

	if *telOut != "" {
		if err := writeTelemetry(runner.Telemetry, *telOut); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	}

	if *oracle {
		if total, lines := dcp.SweepOracleReport(out.Results); total > 0 {
			failOracle(total, lines, *oracleTrace)
		}
		fmt.Printf("oracle: clean (%d jobs)\n", len(out.Results))
	}
}

// failOracle renders the sweep's conformance violations to stderr — and to
// the -oracle-trace file, which CI uploads as the failure artifact — then
// exits nonzero.
func failOracle(total int64, lines []string, trace string) {
	for _, ln := range lines {
		fmt.Fprintln(os.Stderr, ln)
	}
	if trace != "" {
		data := strings.Join(lines, "\n") + "\n"
		if err := os.WriteFile(trace, []byte(data), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
		} else {
			fmt.Fprintf(os.Stderr, "sweep: oracle trace -> %s\n", trace)
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: %d oracle violations\n", total)
	os.Exit(1)
}

func hitRate(out *dcp.SweepOutcome) float64 {
	if done := out.Completed(); done > 0 {
		return float64(out.Hits) / float64(done)
	}
	return 0
}

// printJobTimings summarizes per-job wall time over the jobs that actually
// executed (cache hits cost no simulation time).
func printJobTimings(out *dcp.SweepOutcome) {
	if out.Misses == 0 {
		return
	}
	var sum, max int64
	for _, ns := range out.JobWallNs {
		sum += ns
		if ns > max {
			max = ns
		}
	}
	mean := time.Duration(sum / int64(out.Misses)).Round(time.Microsecond)
	fmt.Printf("per-job wall time: mean %v, max %v (%d executed)\n",
		mean, time.Duration(max).Round(time.Microsecond), out.Misses)
}

func writeTelemetry(reg *dcp.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	snap := reg.Snapshot()
	if err := snap.WriteJSONLines(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("telemetry: %d instruments -> %s\n", len(snap.Instruments), path)
	return nil
}
