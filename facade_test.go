package dctcpplus_test

import (
	"strings"
	"testing"

	dcp "dctcpplus"
)

func TestFacadeProtocolRoundTrip(t *testing.T) {
	for _, p := range dcp.Protocols {
		got, err := dcp.ParseProtocol(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: %v %v", p, got, err)
		}
	}
}

func TestFacadeIncastEndToEnd(t *testing.T) {
	o := dcp.DefaultIncastOptions(dcp.ProtoDCTCP, 6)
	o.Rounds = 5
	o.WarmupRounds = 1
	r := dcp.RunIncast(o)
	if r.Rounds != 4 {
		t.Fatalf("rounds = %d", r.Rounds)
	}
	if r.GoodputMbps.Mean <= 0 || r.FCTms.Mean <= 0 {
		t.Error("degenerate summaries")
	}
	var sb strings.Builder
	dcp.PrintIncastRows(&sb, []dcp.IncastResult{r})
	if !strings.Contains(sb.String(), "dctcp") {
		t.Error("row output missing protocol")
	}
}

func TestFacadeSweepAndDurations(t *testing.T) {
	if dcp.Millisecond != 1000*dcp.Microsecond || dcp.Second != 1000*dcp.Millisecond {
		t.Error("duration units inconsistent")
	}
	o := dcp.DefaultIncastOptions(dcp.ProtoDCTCPPlus, 0)
	o.Rounds = 4
	o.WarmupRounds = 1
	rs := dcp.SweepIncast(o, []int{2, 3})
	if len(rs) != 2 || rs[0].Flows != 2 || rs[1].Flows != 3 {
		t.Fatal("sweep shape wrong")
	}
}

func TestFacadeEnhancementFactory(t *testing.T) {
	cfg := dcp.DefaultEnhancementConfig()
	if cfg.DivisorFactor != 2 || !cfg.Randomize {
		t.Error("unexpected enhancement defaults")
	}
	cfg.BackoffUnit = 200 * dcp.Microsecond
	o := dcp.DefaultIncastOptions(dcp.ProtoDCTCPPlus, 4)
	o.Rounds = 4
	o.WarmupRounds = 1
	o.Factory = dcp.DCTCPPlusFactory(o.RTOMin, 9, cfg)
	r := dcp.RunIncast(o)
	if r.Rounds != 3 {
		t.Fatalf("rounds = %d", r.Rounds)
	}
}

func TestFacadeBackgroundIncast(t *testing.T) {
	o := dcp.DefaultBackgroundIncastOptions(dcp.ProtoDCTCPPlus, 4)
	o.Incast.Rounds = 4
	o.Incast.WarmupRounds = 1
	o.ChunkBytes = 1 << 20
	r := dcp.RunBackgroundIncast(o)
	if len(r.PerFlowMeanMbps) != 2 {
		t.Fatalf("long flows = %d", len(r.PerFlowMeanMbps))
	}
	var sb strings.Builder
	dcp.PrintBackgroundIncastRows(&sb, []dcp.BackgroundIncastResult{r})
	if sb.Len() == 0 {
		t.Error("no row output")
	}
}

func TestFacadeBenchmark(t *testing.T) {
	o := dcp.DefaultBenchmarkOptions(dcp.ProtoDCTCP)
	o.Traffic.Queries = 10
	o.Traffic.BackgroundFlows = 10
	o.Traffic.BackgroundMaxBytes = 1 << 20
	r := dcp.RunBenchmark(o)
	if r.Queries != 10 || r.Background != 10 {
		t.Fatalf("completed %d/%d", r.Queries, r.Background)
	}
	var sb strings.Builder
	dcp.PrintBenchmarkRows(&sb, []dcp.BenchmarkResult{r})
	if sb.Len() == 0 {
		t.Error("no row output")
	}
}

func TestFacadeTestbedDefaults(t *testing.T) {
	tb := dcp.DefaultTestbed()
	if tb.Leaves != 3 || tb.HostsPerLeaf != 3 {
		t.Error("testbed shape wrong")
	}
	if tb.Topo.SwitchPort.BufferBytes != 128<<10 || tb.Topo.SwitchPort.MarkThresholdBytes != 32<<10 {
		t.Error("switch parameters do not match the paper")
	}
}
