// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VI), plus the ablations called out in DESIGN.md. Each benchmark runs a
// scaled-down but shape-preserving configuration (fewer rounds / flow
// counts than the paper's 1000-round sweeps — the cmd/ tools expose full
// scale) and reports the headline metrics via b.ReportMetric; the
// rows/series the paper reports are printed once per benchmark run.
//
// Run with:
//
//	go test -bench=. -benchmem
package dctcpplus_test

import (
	"context"
	"fmt"
	"os"
	"sync"

	"testing"

	dcp "dctcpplus"
)

// benchRounds keeps the per-point cost manageable while leaving enough
// measured rounds after warmup for stable statistics.
const (
	benchRounds = 24
	benchWarmup = 6
)

func fastOpts(p dcp.Protocol, n int) dcp.IncastOptions {
	o := dcp.DefaultIncastOptions(p, n)
	o.Rounds = benchRounds
	o.WarmupRounds = benchWarmup
	return o
}

// printOnce guards the row dumps so repeated b.N iterations do not spam.
var printOnce sync.Map

func dumpOnce(key string, f func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		f()
	}
}

// BenchmarkFig1_IncastDCTCPvsTCP regenerates Figure 1: goodput of DCTCP and
// TCP as the number of concurrent flows grows. Expected shape: TCP
// collapses past ~10 flows, DCTCP past ~35-40.
func BenchmarkFig1_IncastDCTCPvsTCP(b *testing.B) {
	flowCounts := []int{1, 5, 10, 20, 40, 60, 80}
	for i := 0; i < b.N; i++ {
		var all []dcp.IncastResult
		for _, p := range []dcp.Protocol{dcp.ProtoTCP, dcp.ProtoDCTCP} {
			all = append(all, dcp.SweepIncast(fastOpts(p, 0), flowCounts)...)
		}
		dumpOnce("fig1", func() {
			fmt.Println("\n=== Figure 1: goodput vs concurrent flows (DCTCP, TCP) ===")
			dcp.PrintIncastRows(os.Stdout, all)
		})
		// Headline: DCTCP goodput at N=40 (last point before its collapse)
		// and at N=60 (after).
		for _, r := range all {
			if r.Protocol == dcp.ProtoDCTCP && r.Flows == 40 {
				b.ReportMetric(r.GoodputMbps.Mean, "dctcp40_mbps")
			}
			if r.Protocol == dcp.ProtoDCTCP && r.Flows == 60 {
				b.ReportMetric(r.GoodputMbps.Mean, "dctcp60_mbps")
			}
		}
	}
}

// BenchmarkFig2_CwndDistribution regenerates Figure 2: the frequency
// distribution of cwnd sizes for DCTCP and TCP at N in {10, 20, 40, 60}.
// Expected shape: at N=10 windows spread over 3-8 MSS; at N>=20 DCTCP's
// mass piles onto 2 MSS (the floor) with a growing cwnd=1 (timeout) share.
func BenchmarkFig2_CwndDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		type row struct {
			p dcp.Protocol
			n int
			r dcp.IncastResult
		}
		var rows []row
		for _, p := range []dcp.Protocol{dcp.ProtoDCTCP, dcp.ProtoTCP} {
			for _, n := range []int{10, 20, 40, 60} {
				o := fastOpts(p, n)
				o.CollectCwnd = true
				rows = append(rows, row{p, n, dcp.RunIncast(o)})
			}
		}
		dumpOnce("fig2", func() {
			fmt.Println("\n=== Figure 2: cwnd frequency distribution (fraction of ACK events) ===")
			fmt.Printf("%-8s %4s | %6s %6s %6s %6s %8s\n",
				"proto", "N", "w=1", "w=2", "w=3-8", "w>8", "events")
			for _, rw := range rows {
				h := rw.r.CwndHist
				var gt8 float64
				for _, bin := range h.Bins() {
					if bin > 8 {
						gt8 += h.Frac(bin)
					}
				}
				fmt.Printf("%-8s %4d | %6.3f %6.3f %6.3f %6.3f %8d\n",
					rw.p, rw.n, h.Frac(1), h.Frac(2), h.FracRange(3, 8), gt8, h.Total())
			}
		})
		for _, rw := range rows {
			if rw.p == dcp.ProtoDCTCP && rw.n == 40 {
				b.ReportMetric(rw.r.CwndHist.FracRange(1, 2), "dctcp40_frac_w1to2")
			}
		}
	}
}

// BenchmarkTable1_TimeoutTaxonomy regenerates Table I: per-round
// probabilities of the (cwnd at floor, ECE=1) condition and of timeouts,
// plus the FLoss-TO / LAck-TO split, for N in {20, 40, 60}. Expected
// shape: the floor/ECE coincidence is common at N=20-40; timeouts grow
// with N; FLoss-TO's share grows with synchronization.
func BenchmarkTable1_TimeoutTaxonomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		type row struct {
			p dcp.Protocol
			n int
			r dcp.IncastResult
		}
		var rows []row
		for _, n := range []int{20, 40, 60} {
			for _, p := range []dcp.Protocol{dcp.ProtoDCTCP, dcp.ProtoTCP} {
				o := fastOpts(p, n)
				o.CollectCwnd = true
				rows = append(rows, row{p, n, dcp.RunIncast(o)})
			}
		}
		dumpOnce("table1", func() {
			fmt.Println("\n=== Table I: floor/ECE coincidence and timeout taxonomy ===")
			fmt.Printf("%-8s %4s | %12s %10s %10s %10s\n",
				"proto", "N", "cwndMin&ECE", "timeout", "FLoss-TO", "LAck-TO")
			for _, rw := range rows {
				total := rw.r.FLossTO + rw.r.LAckTO
				fl, la := 0.0, 0.0
				if total > 0 {
					fl = float64(rw.r.FLossTO) / float64(total)
					la = float64(rw.r.LAckTO) / float64(total)
				}
				fmt.Printf("%-8s %4d | %11.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
					rw.p, rw.n, 100*rw.r.MinCwndECEFrac, 100*rw.r.TimeoutRoundFrac,
					100*fl, 100*la)
			}
		})
		for _, rw := range rows {
			if rw.p == dcp.ProtoDCTCP && rw.n == 40 {
				b.ReportMetric(100*rw.r.TimeoutRoundFrac, "dctcp40_timeout_pct")
			}
		}
	}
}

// BenchmarkFig6_PartialDCTCPPlus regenerates Figure 6: DCTCP+ with only the
// sending-interval regulation (no randomization). Expected shape: it holds
// up past DCTCP's collapse point but degrades again at high N, where the
// still-synchronized bursts defeat pure rate reduction.
func BenchmarkFig6_PartialDCTCPPlus(b *testing.B) {
	flowCounts := []int{20, 40, 60, 80, 120, 160}
	for i := 0; i < b.N; i++ {
		partial := dcp.SweepIncast(fastOpts(dcp.ProtoDCTCPPlusPartial, 0), flowCounts)
		dumpOnce("fig6", func() {
			fmt.Println("\n=== Figure 6: partially implemented DCTCP+ (no desynchronization) ===")
			dcp.PrintIncastRows(os.Stdout, partial)
		})
		b.ReportMetric(partial[len(partial)-1].GoodputMbps.Mean, "partial_atN160_mbps")
	}
}

// BenchmarkFig7_FullDCTCPPlus regenerates Figure 7: the headline result.
// Expected shape: DCTCP+ sustains high goodput and low FCT to 200 flows
// while DCTCP and TCP sit in RTO-dominated collapse.
func BenchmarkFig7_FullDCTCPPlus(b *testing.B) {
	flowCounts := []int{20, 60, 120, 200}
	for i := 0; i < b.N; i++ {
		var all []dcp.IncastResult
		for _, p := range []dcp.Protocol{dcp.ProtoDCTCPPlus, dcp.ProtoDCTCP, dcp.ProtoTCP} {
			all = append(all, dcp.SweepIncast(fastOpts(p, 0), flowCounts)...)
		}
		dumpOnce("fig7", func() {
			fmt.Println("\n=== Figure 7: full DCTCP+ vs DCTCP vs TCP ===")
			dcp.PrintIncastRows(os.Stdout, all)
		})
		for _, r := range all {
			if r.Protocol == dcp.ProtoDCTCPPlus && r.Flows == 200 {
				b.ReportMetric(r.GoodputMbps.Mean, "plus200_mbps")
				b.ReportMetric(r.FCTms.Mean, "plus200_fct_ms")
			}
		}
	}
}

// BenchmarkFig8_RTO10ms regenerates Figure 8: DCTCP and TCP with RTOmin
// lowered to 10ms versus DCTCP+ keeping the 200ms default. Expected shape:
// the short RTO lifts DCTCP/TCP off the floor but DCTCP+ still wins without
// touching the timer.
func BenchmarkFig8_RTO10ms(b *testing.B) {
	flowCounts := []int{20, 60, 120, 200}
	for i := 0; i < b.N; i++ {
		var all []dcp.IncastResult
		all = append(all, dcp.SweepIncast(fastOpts(dcp.ProtoDCTCPPlus, 0), flowCounts)...)
		for _, p := range []dcp.Protocol{dcp.ProtoDCTCP, dcp.ProtoTCP} {
			o := fastOpts(p, 0)
			o.RTOMin = 10 * dcp.Millisecond
			all = append(all, dcp.SweepIncast(o, flowCounts)...)
		}
		dumpOnce("fig8", func() {
			fmt.Println("\n=== Figure 8: DCTCP+ (RTOmin 200ms) vs DCTCP/TCP at RTOmin 10ms ===")
			dcp.PrintIncastRows(os.Stdout, all)
		})
		for _, r := range all {
			if r.Protocol == dcp.ProtoDCTCP && r.Flows == 200 {
				b.ReportMetric(r.GoodputMbps.Mean, "dctcp10ms200_mbps")
			}
		}
	}
}

// BenchmarkFig9_QueueCDF regenerates Figure 9: the CDF of the bottleneck
// queue length sampled every 100us, N in {30, 50, 80}. Expected shape:
// DCTCP+ keeps a shorter, more stable queue than DCTCP and TCP, with the
// gap widening as N grows.
func BenchmarkFig9_QueueCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		type row struct {
			p dcp.Protocol
			n int
			r dcp.IncastResult
		}
		var rows []row
		for _, n := range []int{30, 50, 80} {
			for _, p := range []dcp.Protocol{dcp.ProtoDCTCPPlus, dcp.ProtoDCTCP, dcp.ProtoTCP} {
				o := fastOpts(p, n)
				o.QueueSampleEvery = 100 * dcp.Microsecond
				rows = append(rows, row{p, n, dcp.RunIncast(o)})
			}
		}
		dumpOnce("fig9", func() {
			fmt.Println("\n=== Figure 9: bottleneck queue-length CDF (bytes) ===")
			fmt.Printf("%-14s %4s | %9s %9s %9s %9s\n", "proto", "N", "p50", "p90", "p99", "max")
			for _, rw := range rows {
				cdf := rw.r.QueueCDF()
				fmt.Printf("%-14s %4d | %9.0f %9.0f %9.0f %9.0f\n",
					rw.p, rw.n, cdf.Quantile(0.5), cdf.Quantile(0.9),
					cdf.Quantile(0.99), cdf.Quantile(1))
			}
		})
		for _, rw := range rows {
			if rw.p == dcp.ProtoDCTCPPlus && rw.n == 80 {
				b.ReportMetric(rw.r.QueueCDF().Quantile(0.5), "plus80_q50_bytes")
			}
		}
	}
}

// BenchmarkFig11_12_BackgroundIncast regenerates Figures 11 and 12: incast
// goodput and FCT with two persistent background flows sharing the
// bottleneck. Expected shape: DCTCP+ keeps nearly its no-background
// goodput and far shorter FCT than DCTCP/TCP; the long flows still get a
// fair share.
func BenchmarkFig11_12_BackgroundIncast(b *testing.B) {
	// The RTO-collapsed baselines make these the slowest points in the
	// suite; the bench keeps a reduced sweep (cmd/report runs the full
	// figure).
	flowCounts := []int{20, 80}
	for i := 0; i < b.N; i++ {
		var all []dcp.BackgroundIncastResult
		for _, p := range []dcp.Protocol{dcp.ProtoDCTCPPlus, dcp.ProtoDCTCP, dcp.ProtoTCP} {
			o := dcp.DefaultBackgroundIncastOptions(p, 0)
			o.Incast.Rounds = 16
			o.Incast.WarmupRounds = 4
			o.ChunkBytes = 1 << 20
			all = append(all, dcp.SweepBackgroundIncastParallel(o, flowCounts)...)
		}
		dumpOnce("fig11", func() {
			fmt.Println("\n=== Figures 11+12: incast with background long flows ===")
			dcp.PrintBackgroundIncastRows(os.Stdout, all)
		})
		for _, r := range all {
			if r.Protocol == dcp.ProtoDCTCPPlus && r.Flows == 80 {
				b.ReportMetric(r.GoodputMbps.Mean, "plus80bg_mbps")
				b.ReportMetric(r.LongFlowMbps.Mean, "longflow_mbps")
			}
		}
	}
}

// BenchmarkFig13_BenchmarkTraffic regenerates Figure 13: query and
// background FCT statistics under the production-cluster traffic mix, both
// protocols at RTOmin=10ms. Expected shape: DCTCP+ wins on mean and
// especially 99th-percentile query FCT; background traffic is barely
// affected.
func BenchmarkFig13_BenchmarkTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var all []dcp.BenchmarkResult
		for _, p := range []dcp.Protocol{dcp.ProtoDCTCPPlus, dcp.ProtoDCTCP} {
			o := dcp.DefaultBenchmarkOptions(p)
			o.Traffic.Queries = 300
			o.Traffic.ShortFlows = 75
			o.Traffic.BackgroundFlows = 300
			all = append(all, dcp.RunBenchmark(o))
		}
		dumpOnce("fig13", func() {
			fmt.Println("\n=== Figure 13: benchmark traffic FCT (queries / background) ===")
			dcp.PrintBenchmarkRows(os.Stdout, all)
		})
		b.ReportMetric(all[0].QueryFCTms.P99, "plus_q99_ms")
		b.ReportMetric(all[1].QueryFCTms.P99, "dctcp_q99_ms")
	}
}

// BenchmarkFig14_ConvergenceTrace regenerates Figure 14: the bottleneck
// queue sampled every 100us while 50 DCTCP+ flows each transfer 4MB.
// Expected shape: the buffer overflows during the first rounds, then the
// regulation converges and the queue stays clear of the 128KB limit.
func BenchmarkFig14_ConvergenceTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := dcp.DefaultIncastOptions(dcp.ProtoDCTCPPlus, 50)
		o.BytesPerFlow = 4 << 20
		o.Rounds = 6
		o.WarmupRounds = 1
		o.QueueSampleEvery = 100 * dcp.Microsecond
		r := dcp.RunIncast(o)
		dumpOnce("fig14", func() {
			fmt.Println("\n=== Figure 14: queue occupancy over time, N=50 x 4MB (1ms bins, max bytes) ===")
			// Coarse time series: max occupancy per 50ms bin.
			const bin = 50 * dcp.Millisecond
			var cur, binIdx int
			for _, s := range r.QueueSamples {
				idx := int(dcp.Duration(s.At) / bin)
				for idx > binIdx {
					fmt.Printf("t=%4dms max_queue=%6d bytes\n", binIdx*50, cur)
					binIdx++
					cur = 0
				}
				if s.Bytes > cur {
					cur = s.Bytes
				}
			}
			fmt.Printf("t=%4dms max_queue=%6d bytes\n", binIdx*50, cur)
			fmt.Printf("drops(total)=%d timeouts(total)=%d\n", r.BottleneckDrops, r.Timeouts)
		})
		b.ReportMetric(float64(r.BottleneckDrops), "drops")
	}
}

// BenchmarkAblation_BackoffUnit sweeps backoff_time_unit at N=120 (§V-D:
// too small cannot relieve severe fan-in congestion, too large wastes
// bandwidth at moderate N).
func BenchmarkAblation_BackoffUnit(b *testing.B) {
	units := []dcp.Duration{100 * dcp.Microsecond, 400 * dcp.Microsecond,
		800 * dcp.Microsecond, 3200 * dcp.Microsecond}
	for i := 0; i < b.N; i++ {
		var results []dcp.IncastResult
		for _, u := range units {
			cfg := dcp.DefaultEnhancementConfig()
			cfg.BackoffUnit = u
			o := fastOpts(dcp.ProtoDCTCPPlus, 120)
			o.Factory = dcp.DCTCPPlusFactory(o.RTOMin, o.Testbed.Seed, cfg)
			results = append(results, dcp.RunIncast(o))
		}
		dumpOnce("abl-unit", func() {
			fmt.Println("\n=== Ablation: backoff_time_unit at N=120 ===")
			for j, r := range results {
				fmt.Printf("unit=%-8v goodput=%6.0f Mbps fct=%8.2fms timeouts=%d\n",
					units[j], r.GoodputMbps.Mean, r.FCTms.Mean, r.Timeouts)
			}
		})
		b.ReportMetric(results[2].GoodputMbps.Mean, "unit800us_mbps")
	}
}

// BenchmarkAblation_Divisor sweeps divisor_factor at N=120 (§V-D: too big
// recovers prematurely, too conservative retards regulation).
func BenchmarkAblation_Divisor(b *testing.B) {
	divisors := []float64{1.5, 2, 4, 8}
	for i := 0; i < b.N; i++ {
		var results []dcp.IncastResult
		for _, d := range divisors {
			cfg := dcp.DefaultEnhancementConfig()
			cfg.DivisorFactor = d
			o := fastOpts(dcp.ProtoDCTCPPlus, 120)
			o.Factory = dcp.DCTCPPlusFactory(o.RTOMin, o.Testbed.Seed, cfg)
			results = append(results, dcp.RunIncast(o))
		}
		dumpOnce("abl-div", func() {
			fmt.Println("\n=== Ablation: divisor_factor at N=120 ===")
			for j, r := range results {
				fmt.Printf("divisor=%-4v goodput=%6.0f Mbps fct=%8.2fms timeouts=%d\n",
					divisors[j], r.GoodputMbps.Mean, r.FCTms.Mean, r.Timeouts)
			}
		})
		b.ReportMetric(results[1].GoodputMbps.Mean, "div2_mbps")
	}
}

// BenchmarkAblation_Desync isolates the desynchronization mechanism at a
// fixed N: randomized vs deterministic backoff (§VI-B's two-stage
// validation).
func BenchmarkAblation_Desync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := dcp.RunIncast(fastOpts(dcp.ProtoDCTCPPlus, 160))
		partial := dcp.RunIncast(fastOpts(dcp.ProtoDCTCPPlusPartial, 160))
		dumpOnce("abl-desync", func() {
			fmt.Println("\n=== Ablation: desynchronization at N=160 ===")
			dcp.PrintIncastRows(os.Stdout, []dcp.IncastResult{full, partial})
		})
		b.ReportMetric(full.GoodputMbps.Mean, "randomized_mbps")
		b.ReportMetric(partial.GoodputMbps.Mean, "deterministic_mbps")
	}
}

// BenchmarkAblation_MinCwnd checks the paper's footnote 3: lowering plain
// DCTCP's window floor to 1 MSS does not rescue it under high fan-in.
func BenchmarkAblation_MinCwnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		std := dcp.RunIncast(fastOpts(dcp.ProtoDCTCP, 80))
		min1 := dcp.RunIncast(fastOpts(dcp.ProtoDCTCPMin1, 80))
		dumpOnce("abl-min", func() {
			fmt.Println("\n=== Ablation: DCTCP min cwnd 2 vs 1 MSS at N=80 (footnote 3) ===")
			dcp.PrintIncastRows(os.Stdout, []dcp.IncastResult{std, min1})
		})
		b.ReportMetric(std.GoodputMbps.Mean, "min2_mbps")
		b.ReportMetric(min1.GoodputMbps.Mean, "min1_mbps")
	}
}

// BenchmarkTelemetryOverhead measures the cost of the metrics layer on the
// simulator's hottest path: a full DCTCP+ incast point with (a) no registry
// attached — every instrument pointer nil, each hook a no-op method on a nil
// receiver — and (b) a live registry collecting all layers. The "off" case
// must stay within ~2% of an untouched build (the hooks compile to a nil
// check); compare off vs on to see the enabled cost. Run with -benchmem: the
// per-op allocation delta of "on" over "off" is the registry's lookup cost
// at attach time — the per-packet Add/Observe path allocates nothing (see
// TestHotPathAllocFree in internal/telemetry).
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, reg *dcp.Registry) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := fastOpts(dcp.ProtoDCTCPPlus, 40)
			o.Telemetry = reg
			r := dcp.RunIncast(o)
			b.ReportMetric(r.GoodputMbps.Mean, "goodput_mbps")
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, dcp.NewRegistry()) })
}

// BenchmarkExtension_RenoPlus runs the §VII extension: the enhancement
// mechanism layered on Reno-ECN.
func BenchmarkExtension_RenoPlus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		renoPlus := dcp.RunIncast(fastOpts(dcp.ProtoRenoPlus, 80))
		reno := dcp.RunIncast(fastOpts(dcp.ProtoTCP, 80))
		dumpOnce("ext-reno", func() {
			fmt.Println("\n=== Extension (§VII): Reno-ECN + enhancement mechanism at N=80 ===")
			dcp.PrintIncastRows(os.Stdout, []dcp.IncastResult{renoPlus, reno})
		})
		b.ReportMetric(renoPlus.GoodputMbps.Mean, "renoplus_mbps")
		b.ReportMetric(reno.GoodputMbps.Mean, "reno_mbps")
	}
}

// BenchmarkSweepWorkerScaling runs the same 12-point grid through the
// sweep orchestrator with 1 and 4 workers. Jobs are independent
// CPU-bound simulations, so ns/op should shrink near-linearly from
// jobs=1 to jobs=4 on a machine with >=4 cores (compare the
// sub-benchmark times; jobs_per_sec makes the throughput explicit; on
// fewer cores the curve flattens at GOMAXPROCS). No cache is attached —
// every iteration must execute every job, or the pool would have
// nothing to parallelize.
func BenchmarkSweepWorkerScaling(b *testing.B) {
	spec := dcp.SweepSpec{
		Name:         "bench-scaling",
		Protocols:    []string{"dctcp+", "dctcp"},
		Flows:        []int{40, 80},
		RTOMins:      []dcp.Duration{10 * dcp.Millisecond},
		Seeds:        []uint64{1, 2, 3},
		Rounds:       benchRounds,
		WarmupRounds: benchWarmup,
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("jobs=%d", workers), func(b *testing.B) {
			runner := dcp.SweepRunner{Workers: workers}
			for i := 0; i < b.N; i++ {
				out, err := runner.Run(context.Background(), spec)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(out.Jobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs_per_sec")
			}
		})
	}
}
