// Package dctcpplus is a packet-level reproduction of "Slowing Little
// Quickens More: Improving DCTCP for Massive Concurrent Flows" (Miao,
// Cheng, Ren, Shu — ICPP 2015).
//
// The paper's artifact is a Linux-kernel congestion-control patch
// evaluated on a physical incast testbed. This library rebuilds the whole
// stack as a deterministic discrete-event simulation: an event engine, a
// 2-tier GbE topology with ECN-marking shared-buffer switches, a TCP
// NewReno engine with pluggable congestion control, DCTCP, and DCTCP+ —
// the paper's contribution: when the congestion window is pinned at its
// floor and ECN feedback keeps arriving, regulate the sending *time
// interval* (slow_time) with randomized AIMD backoff to both slow down and
// desynchronize massive concurrent flows.
//
// This package is the public facade: protocol selection, experiment
// configuration, and runners for every figure and table in the paper's
// evaluation. The building blocks live under internal/ (see DESIGN.md for
// the system inventory):
//
//	internal/sim      discrete-event engine (clock, scheduler, RNG)
//	internal/packet   segment model with ECN codepoints
//	internal/netsim   links, ECN switches, hosts, topologies
//	internal/tcp      TCP engine: NewReno, RTO taxonomy, ECN echo modes
//	internal/dctcp    DCTCP congestion module (alpha estimator)
//	internal/core     DCTCP+ (Fig. 4 state machine, Algorithm 1)
//	internal/workload incast / background / production-benchmark traffic
//	internal/stats    summaries, CDFs, histograms
//	internal/trace    cwnd probes and queue samplers
//	internal/exp      per-figure experiment runners
//	internal/sweep    grid orchestration: worker pool, result cache, resume
//
// # Quick start
//
//	opts := dctcpplus.DefaultIncastOptions(dctcpplus.ProtoDCTCPPlus, 100)
//	res := dctcpplus.RunIncast(opts)
//	fmt.Printf("N=100 goodput %.0f Mbps, FCT %.1f ms\n",
//	    res.GoodputMbps.Mean, res.FCTms.Mean)
//
// Every run is a pure function of its options (seeded randomness, virtual
// time only), so results are exactly reproducible.
package dctcpplus

import (
	"io"

	"dctcpplus/internal/core"
	"dctcpplus/internal/exp"
	"dctcpplus/internal/fault"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/stats"
	"dctcpplus/internal/sweep"
	"dctcpplus/internal/sweep/pool"
	"dctcpplus/internal/telemetry"
	"dctcpplus/internal/workload"
)

// Protocol selects a transport variant under evaluation.
type Protocol = exp.Protocol

// The protocol variants. See the exp package for details.
const (
	// ProtoTCP is plain TCP NewReno without ECN.
	ProtoTCP = exp.ProtoTCP
	// ProtoDCTCP is DCTCP with the standard 2-MSS window floor.
	ProtoDCTCP = exp.ProtoDCTCP
	// ProtoDCTCPMin1 is DCTCP with a 1-MSS floor (footnote-3 control).
	ProtoDCTCPMin1 = exp.ProtoDCTCPMin1
	// ProtoDCTCPPlus is the full DCTCP+.
	ProtoDCTCPPlus = exp.ProtoDCTCPPlus
	// ProtoDCTCPPlusPartial is DCTCP+ without desynchronization (Fig. 6).
	ProtoDCTCPPlusPartial = exp.ProtoDCTCPPlusPartial
	// ProtoRenoPlus is Reno-ECN plus the enhancement mechanism (§VII).
	ProtoRenoPlus = exp.ProtoRenoPlus
	// ProtoD2TCP is Deadline-Aware DCTCP with mixed per-flow urgencies.
	ProtoD2TCP = exp.ProtoD2TCP
	// ProtoD2TCPPlus is D2TCP plus the enhancement mechanism (§VII).
	ProtoD2TCPPlus = exp.ProtoD2TCPPlus
)

// Protocols lists every variant in display order.
var Protocols = exp.Protocols

// ParseProtocol maps a protocol name back to its value.
func ParseProtocol(s string) (Protocol, error) { return exp.ParseProtocol(s) }

// Duration re-exports the virtual-time duration type used in options.
type Duration = sim.Duration

// Common virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Experiment configuration and results.
type (
	// Testbed describes the simulated cluster.
	Testbed = exp.Testbed
	// IncastOptions parameterizes one incast run (Figs. 1/2/6/7/8/9/14,
	// Table I).
	IncastOptions = exp.IncastOptions
	// IncastResult is one incast experiment point.
	IncastResult = exp.IncastResult
	// BackgroundIncastOptions parameterizes incast + long flows (Figs.
	// 10-12).
	BackgroundIncastOptions = exp.BackgroundIncastOptions
	// BackgroundIncastResult extends IncastResult with long-flow numbers.
	BackgroundIncastResult = exp.BackgroundIncastResult
	// BenchmarkOptions parameterizes the production benchmark mix (Fig. 13).
	BenchmarkOptions = exp.BenchmarkOptions
	// BenchmarkResult holds the Fig. 13 rows.
	BenchmarkResult = exp.BenchmarkResult
)

// DefaultTestbed returns the paper's cluster parameters (9 workers + 1
// aggregator, 1Gbps links, 128KB port buffers, K=32KB).
func DefaultTestbed() Testbed { return exp.DefaultTestbed() }

// HULLTestbed returns the cluster with HULL phantom-queue marking instead
// of the DCTCP threshold (the §VII composition with HULL).
func HULLTestbed() Testbed { return exp.HULLTestbed() }

// DefaultIncastOptions returns §VI-B basic-incast settings for protocol p
// with N concurrent flows.
func DefaultIncastOptions(p Protocol, flows int) IncastOptions {
	return exp.DefaultIncastOptions(p, flows)
}

// DefaultBackgroundIncastOptions returns §VI-C settings (incast + 2
// persistent flows).
func DefaultBackgroundIncastOptions(p Protocol, flows int) BackgroundIncastOptions {
	return exp.DefaultBackgroundIncastOptions(p, flows)
}

// DefaultBenchmarkOptions returns §VI-D benchmark-traffic settings.
func DefaultBenchmarkOptions(p Protocol) BenchmarkOptions {
	return exp.DefaultBenchmarkOptions(p)
}

// RunIncast executes one incast experiment point.
func RunIncast(o IncastOptions) IncastResult { return exp.RunIncast(o) }

// SweepIncast runs an incast curve across flow counts.
func SweepIncast(base IncastOptions, flowCounts []int) []IncastResult {
	return exp.SweepIncast(base, flowCounts)
}

// SweepIncastParallel is SweepIncast with the points executed on separate
// goroutines. Each point is an independent deterministic simulation, so
// results are positionally identical to the sequential sweep.
func SweepIncastParallel(base IncastOptions, flowCounts []int) []IncastResult {
	return exp.SweepIncastParallel(base, flowCounts)
}

// RunMany executes heterogeneous incast points concurrently.
func RunMany(optList []IncastOptions) []IncastResult { return exp.RunMany(optList) }

// Sweep orchestration (internal/sweep): declare a parameter grid as a
// SweepSpec, run it with a SweepRunner, and get cross-seed streaming
// aggregates plus a content-addressed cache that lets identical points be
// reused across runs and interrupted sweeps resume.
type (
	// SweepSpec declares a sweep as a cross product of grid dimensions.
	SweepSpec = sweep.Spec
	// SweepPoint is the complete identity of one sweep job.
	SweepPoint = sweep.Point
	// SweepJob is one expanded grid point with its position.
	SweepJob = sweep.Job
	// SweepResult is the cacheable outcome of one job.
	SweepResult = sweep.Result
	// SweepRunner executes sweeps over a bounded worker pool.
	SweepRunner = sweep.Runner
	// SweepOutcome is the full accounting of one sweep run.
	SweepOutcome = sweep.Outcome
	// SweepGroup is the cross-seed aggregate of one experiment point.
	SweepGroup = sweep.Group
	// SweepCache is the content-addressed on-disk result store.
	SweepCache = sweep.Cache
)

// Topology names accepted by SweepSpec.Topos / SweepPoint.Topo.
const (
	SweepTopoDefault = sweep.TopoDefault
	SweepTopoHULL    = sweep.TopoHULL
)

// OpenSweepCache opens (creating if needed) a sweep result cache at dir.
func OpenSweepCache(dir string) (*SweepCache, error) { return sweep.OpenCache(dir) }

// LargeNSweepSpec returns the massive-concurrency scenario (N=100..2000,
// DCTCP+ vs DCTCP) behind EXPERIMENTS.md's large-N table.
func LargeNSweepSpec() SweepSpec { return sweep.LargeNSpec() }

// WriteSweepGroups renders the cross-seed aggregate table.
func WriteSweepGroups(w io.Writer, groups []*SweepGroup) error {
	return sweep.WriteGroups(w, groups)
}

// SweepOracleReport folds the conformance-oracle outcome of a completed
// sweep: the total violation count plus one rendered block per violating
// point (identity, then sampled violations with their minimized event
// windows). (0, nil) means the sweep ran oracle-clean.
func SweepOracleReport(results []SweepResult) (total int64, lines []string) {
	return sweep.OracleReport(results)
}

// DefaultSweepWorkers is the worker-pool width used when a runner's
// Workers field (or a command's -jobs flag) is left at its default: one
// worker per available CPU.
func DefaultSweepWorkers() int { return pool.DefaultWorkers() }

// SetParallelism sets the worker count the *Parallel sweep variants and
// RunMany fan out to (a command's -jobs flag lands here). Width changes
// wall-clock time only, never results.
func SetParallelism(n int) { exp.Parallelism = n }

// RunBackgroundIncast executes incast concurrently with long flows.
func RunBackgroundIncast(o BackgroundIncastOptions) BackgroundIncastResult {
	return exp.RunBackgroundIncast(o)
}

// SweepBackgroundIncast runs the background-incast curve across flow
// counts.
func SweepBackgroundIncast(base BackgroundIncastOptions, flowCounts []int) []BackgroundIncastResult {
	return exp.SweepBackgroundIncast(base, flowCounts)
}

// SweepBackgroundIncastParallel is SweepBackgroundIncast with the points
// executed concurrently.
func SweepBackgroundIncastParallel(base BackgroundIncastOptions, flowCounts []int) []BackgroundIncastResult {
	return exp.SweepBackgroundIncastParallel(base, flowCounts)
}

// RunBenchmark executes the production benchmark-traffic experiment.
func RunBenchmark(o BenchmarkOptions) BenchmarkResult { return exp.RunBenchmark(o) }

// PrintIncastRows writes an incast curve as aligned text rows.
func PrintIncastRows(w io.Writer, results []IncastResult) { exp.PrintIncastRows(w, results) }

// PrintBackgroundIncastRows writes the Figs. 11/12 rows.
func PrintBackgroundIncastRows(w io.Writer, results []BackgroundIncastResult) {
	exp.PrintBackgroundIncastRows(w, results)
}

// PrintBenchmarkRows writes the Fig. 13 rows.
func PrintBenchmarkRows(w io.Writer, results []BenchmarkResult) {
	exp.PrintBenchmarkRows(w, results)
}

// EnhancementConfig parameterizes the DCTCP+ mechanism itself (backoff
// unit, divisor, threshold, desynchronization) for ablation studies.
type EnhancementConfig = core.Config

// DefaultEnhancementConfig returns the calibrated DCTCP+ parameters.
func DefaultEnhancementConfig() EnhancementConfig { return core.DefaultConfig() }

// FlowFactory builds per-flow transports; plug one into
// IncastOptions.Factory to run custom variants.
type FlowFactory = workload.FlowFactory

// DCTCPPlusFactory builds DCTCP+ endpoints with a custom enhancement
// configuration, for parameter sweeps.
func DCTCPPlusFactory(rtoMin Duration, seedBase uint64, cfg EnhancementConfig) FlowFactory {
	return exp.DCTCPPlusFactory(rtoMin, seedBase, cfg)
}

// JainIndex computes Jain's fairness index over per-flow allocations
// (1 = perfectly equal shares, 1/n = one flow holds everything).
func JainIndex(x []float64) float64 { return stats.JainIndex(x) }

// Observability: set IncastOptions.Telemetry (or Scale.Telemetry for the
// figure specs) to a Registry and every hot layer of the run — switch
// ports, senders, congestion control, workload — records its events there.
// Snapshot the registry after the run and export it as JSON lines,
// Prometheus text format, or a human table; see README's "Observability"
// section.
type (
	// Registry collects named, label-keyed instruments. Instruments are
	// atomic, so one registry serves parallel sweeps; a nil *Registry is a
	// valid no-op sink.
	Registry = telemetry.Registry
	// MetricLabel is one key=value pair of an instrument's identity.
	MetricLabel = telemetry.Label
	// MetricsSnapshot is a point-in-time dump of a registry, with the
	// exporter methods (WriteJSONLines, WritePrometheus, WriteTable).
	MetricsSnapshot = telemetry.Snapshot
	// Manifest is the machine-readable record of one run (config, seed,
	// code version, wall/sim time, instrument dump).
	Manifest = telemetry.Manifest
)

// NewRegistry returns an empty telemetry registry.
func NewRegistry() *Registry { return telemetry.NewRegistry() }

// NewManifest starts a run manifest, capturing wall clock, git state and
// toolchain version.
func NewManifest(name string, seed uint64) *Manifest { return telemetry.NewManifest(name, seed) }

// ReadManifestFile reads a manifest written by WriteManifestFile.
func ReadManifestFile(path string) (*Manifest, error) { return telemetry.ReadManifestFile(path) }

// WriteManifestFile atomically writes a manifest to path.
func WriteManifestFile(path string, m *Manifest) error { return telemetry.WriteManifestFile(path, m) }

// DiffManifests summarizes the per-instrument deltas between two run
// manifests (counter values and histogram counts), one human-readable line
// per changed instrument. Use it to compare a fresh -baseline run against
// the committed BENCH_baseline.json.
func DiffManifests(base, cur *Manifest) []string { return telemetry.DiffSummaries(base, cur) }

// Fault injection: deterministic, schedulable pathologies composed with
// any incast run — link blackouts, seeded random loss, rate/delay
// degradation, switch buffer carving, host stalls (see DESIGN.md's fault
// model). Set IncastOptions.Faults to a FaultGenConfig and the run injects
// the generated plan at its virtual times; the run stays a pure function
// of options + seed. RunResilience produces the EXPERIMENTS.md resilience
// table.
type (
	// FaultClass names a family of faults: blackout, loss, rate, delay,
	// buffer, stall.
	FaultClass = fault.Class
	// FaultGenConfig parameterizes the seeded fault-plan generator.
	FaultGenConfig = fault.GenConfig
	// FaultStats totals what a fault plan did to a run.
	FaultStats = fault.Stats
	// ResilienceOptions parameterizes the clean-vs-faulted, per-class
	// protocol comparison sweep.
	ResilienceOptions = exp.ResilienceOptions
	// ResilienceRow is one fault class evaluated across the protocols.
	ResilienceRow = exp.ResilienceRow
)

// DefaultFaultGenConfig returns the moderate fault mix (two 10ms-scale
// episodes per class in [20ms, 220ms)) under the given seed.
func DefaultFaultGenConfig(seed uint64) FaultGenConfig { return fault.DefaultGenConfig(seed) }

// AllFaultClasses lists every fault class in declaration order.
func AllFaultClasses() []FaultClass { return fault.AllClasses() }

// ParseFaultClasses resolves a comma-separated fault-class list ("all" or
// "" selects every class).
func ParseFaultClasses(s string) ([]FaultClass, error) { return fault.ParseClasses(s) }

// RunResilience executes the resilience sweep: each protocol clean, then
// under each fault class in isolation.
func RunResilience(o ResilienceOptions) []ResilienceRow { return exp.RunResilience(o) }

// PrintResilienceRows writes the resilience sweep as aligned text rows.
func PrintResilienceRows(w io.Writer, protocols []Protocol, rows []ResilienceRow) {
	exp.PrintResilienceRows(w, protocols, rows)
}

// Typed per-figure experiments: construct the spec (NewFigureN), adjust
// fields, Run, then Render the same rows/series the paper reports.
type (
	// Scale applies common run-length settings to figure specs.
	Scale = exp.Scale
	// Figure1 is the basic incast goodput comparison (DCTCP vs TCP).
	Figure1 = exp.Figure1
	// Figure2Table1 is the cwnd distribution + timeout taxonomy analysis.
	Figure2Table1 = exp.Figure2Table1
	// Figure7 is the headline comparison (Figures 6/8 are variants).
	Figure7 = exp.Figure7
	// Figure9 is the bottleneck queue-length CDF comparison.
	Figure9 = exp.Figure9
	// Figure11_12 is the incast-with-background-flows experiment.
	Figure11_12 = exp.Figure11_12
	// Figure13 is the production benchmark-traffic experiment.
	Figure13 = exp.Figure13
	// Figure14 is the DCTCP+ convergence trace.
	Figure14 = exp.Figure14
)

// DefaultScale returns the report's default run-length settings.
func DefaultScale() Scale { return exp.DefaultScale() }

// NewFigure1 returns the Figure 1 specification.
func NewFigure1() *Figure1 { return exp.NewFigure1() }

// NewFigure2Table1 returns the Figure 2 / Table I specification.
func NewFigure2Table1() *Figure2Table1 { return exp.NewFigure2Table1() }

// NewFigure6 returns the Figure 6 (partial DCTCP+) specification.
func NewFigure6() *Figure7 { return exp.NewFigure6() }

// NewFigure7 returns the Figure 7 specification.
func NewFigure7() *Figure7 { return exp.NewFigure7() }

// NewFigure8 returns the Figure 8 (10ms baseline RTO) specification.
func NewFigure8() *Figure7 { return exp.NewFigure8() }

// NewFigure9 returns the Figure 9 specification.
func NewFigure9() *Figure9 { return exp.NewFigure9() }

// NewFigure11_12 returns the §VI-C specification.
func NewFigure11_12() *Figure11_12 { return exp.NewFigure11_12() }

// NewFigure13 returns the §VI-D specification.
func NewFigure13() *Figure13 { return exp.NewFigure13() }

// NewFigure14 returns the Figure 14 specification.
func NewFigure14() *Figure14 { return exp.NewFigure14() }
